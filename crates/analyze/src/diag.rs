//! Diagnostics: stable rule IDs, severities, `file:line:col` spans, and
//! human + JSON rendering. The JSON writer is hand-rolled (this crate
//! depends on nothing, not even `etm-support`).

use std::fmt;

/// How bad a finding is. Both levels gate the build; severity only
/// ranks the output (errors print first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Invariant violations: deadlock classes, frozen-state mutation,
    /// shipped placeholders.
    Error,
    /// Discipline violations that are survivable but rot: unsupervised
    /// spawns, policy style rules.
    Warning,
}

impl Severity {
    /// Lower-case label for output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// How `analyze.allow` entries apply to a rule's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// An entry `(rule, file)` suppresses every diagnostic of the rule
    /// in that file.
    PerFile,
    /// The pass itself consults the baseline (the unwrap rule: an entry
    /// only relaxes "never" to "with an adjacent `// unwrap-ok:`
    /// justification comment").
    InPass,
}

/// A stable rule: the ID is part of the tool's contract (`analyze.allow`
/// entries and suppression docs reference it).
#[derive(Debug)]
pub struct Rule {
    /// Stable ID (`C001`…, `P001`…). Never renumber.
    pub id: &'static str,
    /// Short kebab-case name (`lock-order`).
    pub name: &'static str,
    /// Gate severity.
    pub severity: Severity,
    /// One-line summary for `--help`-style listings and the JSON report.
    pub brief: &'static str,
    /// How baseline entries interact with this rule.
    pub baseline: BaselineMode,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: &'static Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human message (no trailing period, no span — the renderer adds
    /// those).
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}] {}:{}:{}: {}",
            self.rule.severity.label(),
            self.rule.id,
            self.rule.name,
            self.file,
            self.line,
            self.col,
            self.message
        )
    }
}

/// The gate's outcome: surviving diagnostics, what the baseline
/// suppressed, and baseline hygiene failures.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted severity-first then by location.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings matched (and silenced) by an `analyze.allow` entry.
    pub suppressed: Vec<Diagnostic>,
    /// Stale-baseline messages: entries that matched nothing must be
    /// deleted, so the allow list can only shrink.
    pub stale: Vec<String>,
    /// Number of files analyzed.
    pub files: usize,
}

impl Report {
    /// True when the gate passes: nothing to report and no stale
    /// suppressions.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale.is_empty()
    }

    /// Sorts diagnostics severity-first, then file/line/col/rule, and
    /// drops exact duplicates (a pass can reach one site along several
    /// analysis paths).
    pub fn sort(&mut self) {
        let key = |d: &Diagnostic| (d.rule.severity, d.file.clone(), d.line, d.col, d.rule.id);
        self.diagnostics.sort_by_key(key);
        self.suppressed.sort_by_key(key);
        let same = |a: &mut Diagnostic, b: &mut Diagnostic| {
            a.rule.id == b.rule.id
                && a.file == b.file
                && a.line == b.line
                && a.col == b.col
                && a.message == b.message
        };
        self.diagnostics.dedup_by(same);
        self.suppressed.dedup_by(same);
    }

    /// Human rendering: one `severity RULE file:line:col: message` line
    /// per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        for s in &self.stale {
            out.push_str(&format!("stale analyze.allow: {s}\n"));
        }
        out.push_str(&format!(
            "{} finding(s), {} suppressed by analyze.allow, {} stale entr(ies) over {} files\n",
            self.diagnostics.len(),
            self.suppressed.len(),
            self.stale.len(),
            self.files
        ));
        out
    }

    /// Machine rendering: the full report as a JSON object.
    pub fn render_json(&self, rules: &[&'static Rule]) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field("schema", |w| w.num(1.0));
            w.field("files", |w| w.num(self.files as f64));
            w.field("clean", |w| w.bool(self.is_clean()));
            w.field("rules", |w| {
                w.arr(self.diagnostics.len().max(rules.len()), |w, i| {
                    if i < rules.len() {
                        let r = rules[i];
                        w.obj(|w| {
                            w.field("id", |w| w.str(r.id));
                            w.field("name", |w| w.str(r.name));
                            w.field("severity", |w| w.str(r.severity.label()));
                            w.field("brief", |w| w.str(r.brief));
                        });
                        true
                    } else {
                        false
                    }
                })
            });
            w.field("diagnostics", |w| diags_json(w, &self.diagnostics));
            w.field("suppressed", |w| diags_json(w, &self.suppressed));
            w.field("stale_baseline", |w| {
                w.arr(self.stale.len(), |w, i| {
                    w.str(&self.stale[i]);
                    true
                })
            });
        });
        w.finish()
    }
}

fn diags_json(w: &mut JsonWriter, diags: &[Diagnostic]) {
    w.arr(diags.len(), |w, i| {
        let d = &diags[i];
        w.obj(|w| {
            w.field("rule", |w| w.str(d.rule.id));
            w.field("name", |w| w.str(d.rule.name));
            w.field("severity", |w| w.str(d.rule.severity.label()));
            w.field("file", |w| w.str(&d.file));
            w.field("line", |w| w.num(f64::from(d.line)));
            w.field("col", |w| w.num(f64::from(d.col)));
            w.field("message", |w| w.str(&d.message));
        });
        true
    });
}

/// A tiny streaming JSON writer: objects, arrays, strings with RFC 8259
/// escaping, finite numbers, booleans. Enough for the report — this
/// crate stays dependency-free.
struct JsonWriter {
    buf: String,
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    fn new() -> JsonWriter {
        JsonWriter {
            buf: String::new(),
            needs_comma: vec![false],
        }
    }

    fn finish(self) -> String {
        self.buf
    }

    fn sep(&mut self) {
        if let Some(need) = self.needs_comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    fn obj(&mut self, f: impl FnOnce(&mut JsonWriter)) {
        self.sep();
        self.buf.push('{');
        self.needs_comma.push(false);
        f(self);
        self.needs_comma.pop();
        self.buf.push('}');
    }

    fn field(&mut self, name: &str, f: impl FnOnce(&mut JsonWriter)) {
        self.sep();
        self.push_escaped(name);
        self.buf.push(':');
        // The value itself must not emit a leading comma.
        if let Some(need) = self.needs_comma.last_mut() {
            *need = false;
        }
        f(self);
        if let Some(need) = self.needs_comma.last_mut() {
            *need = true;
        }
    }

    /// Emits up to `n` elements; `f` returns false to stop early.
    fn arr(&mut self, n: usize, mut f: impl FnMut(&mut JsonWriter, usize) -> bool) {
        self.sep();
        self.buf.push('[');
        self.needs_comma.push(false);
        for i in 0..n {
            if !f(self, i) {
                break;
            }
        }
        self.needs_comma.pop();
        self.buf.push(']');
    }

    fn str(&mut self, s: &str) {
        self.sep();
        self.push_escaped(s);
    }

    fn num(&mut self, v: f64) {
        self.sep();
        if v.fract() == 0.0 && v.abs() < 1e15 {
            self.buf.push_str(&format!("{}", v as i64));
        } else {
            self.buf.push_str(&format!("{v}"));
        }
    }

    fn bool(&mut self, v: bool) {
        self.sep();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static DEMO: Rule = Rule {
        id: "T001",
        name: "demo",
        severity: Severity::Error,
        brief: "demo rule",
        baseline: BaselineMode::PerFile,
    };

    fn diag(file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule: &DEMO,
            file: file.into(),
            line,
            col: 1,
            message: "a \"quoted\" message".into(),
        }
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut report = Report {
            diagnostics: vec![diag("a.rs", 3)],
            suppressed: vec![diag("b.rs", 9)],
            stale: vec!["entry x".into()],
            files: 2,
        };
        report.sort();
        let json = report.render_json(&[&DEMO]);
        assert!(json.contains("\"schema\":1"), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"stale_baseline\":[\"entry x\"]"), "{json}");
        assert!(json.contains("\"clean\":false"), "{json}");
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn report_sorts_errors_first() {
        static WARN: Rule = Rule {
            id: "T002",
            name: "warn-demo",
            severity: Severity::Warning,
            brief: "demo warning",
            baseline: BaselineMode::PerFile,
        };
        let mut report = Report::default();
        report.diagnostics.push(Diagnostic {
            rule: &WARN,
            file: "a.rs".into(),
            line: 1,
            col: 1,
            message: "warn".into(),
        });
        report.diagnostics.push(diag("z.rs", 9));
        report.sort();
        assert_eq!(report.diagnostics[0].rule.id, "T001");
    }
}
