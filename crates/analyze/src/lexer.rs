//! A lossless Rust lexer: every byte of the input is covered by exactly
//! one token, so `tokens.map(text).concat() == input` for any input —
//! including malformed source (unterminated strings and comments run to
//! end of file rather than erroring).
//!
//! The lexer understands the parts of Rust's lexical grammar that a
//! line-regex cannot: nested block comments, raw strings with arbitrary
//! hash fences, byte/C strings, raw identifiers, and the char-literal /
//! lifetime ambiguity (`'a'` vs `'a`). Spans are byte-accurate and every
//! token records the 1-based line/column where it starts, so passes can
//! emit clickable `file:line:col` diagnostics.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// `// ...` to end of line (doc variants `///`, `//!` included).
    LineComment,
    /// `/* ... */`, nesting respected (doc variants `/**`, `/*!` too).
    BlockComment,
    /// Identifier or keyword (`fn`, `state`, `r#match`, `_`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'0'`.
    Char,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    Str,
    /// Numeric literal (integer or float, suffixes attached).
    Number,
    /// A single punctuation character (`.`, `{`, `<`, …).
    Punct,
}

/// One token: a kind plus its byte span and starting line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte on its line.
    pub col: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for whitespace and comments — tokens the item scanner and
    /// the passes skip over.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Lexes `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(src.len() / 4);
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    while pos < src.len() {
        let start = pos;
        let (start_line, start_col) = (line, col);
        let kind = scan_token(src, &mut pos);
        debug_assert!(pos > start, "lexer must always make progress");
        for b in src.as_bytes()[start..pos].iter() {
            if *b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        tokens.push(Token {
            kind,
            start,
            end: pos,
            line: start_line,
            col: start_col,
        });
    }
    tokens
}

fn char_at(src: &str, pos: usize) -> Option<char> {
    src[pos..].chars().next()
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Scans one token starting at `*pos`, advancing `*pos` past it.
fn scan_token(src: &str, pos: &mut usize) -> TokenKind {
    let c = char_at(src, *pos).expect("scan_token called at end of input");
    // Whitespace run.
    if c.is_whitespace() {
        while let Some(c) = char_at(src, *pos) {
            if !c.is_whitespace() {
                break;
            }
            *pos += c.len_utf8();
        }
        return TokenKind::Whitespace;
    }
    // Comments.
    if c == '/' {
        if src[*pos..].starts_with("//") {
            let rest = &src[*pos..];
            let len = rest.find('\n').unwrap_or(rest.len());
            *pos += len;
            return TokenKind::LineComment;
        }
        if src[*pos..].starts_with("/*") {
            scan_block_comment(src, pos);
            return TokenKind::BlockComment;
        }
    }
    // Plain strings.
    if c == '"' {
        *pos += 1;
        scan_string_body(src, pos);
        return TokenKind::Str;
    }
    // r-prefixed: raw string (`r"…"`, `r#"…"#`) or raw ident (`r#match`).
    if c == 'r' {
        if let Some(kind) = scan_r_prefixed(src, pos) {
            return kind;
        }
    }
    // b/c-prefixed literals: b"…", b'…', br#"…"#, c"…", cr"…".
    if c == 'b' || c == 'c' {
        if let Some(kind) = scan_bc_prefixed(src, pos, c == 'b') {
            return kind;
        }
    }
    // Lifetime vs char literal.
    if c == '\'' {
        return scan_quote(src, pos);
    }
    // Numbers.
    if c.is_ascii_digit() {
        scan_number(src, pos);
        return TokenKind::Number;
    }
    // Identifiers and keywords.
    if is_ident_start(c) {
        scan_ident(src, pos);
        return TokenKind::Ident;
    }
    // Anything else is one punctuation character.
    *pos += c.len_utf8();
    TokenKind::Punct
}

/// `/* … */` with nesting; unterminated comments run to end of input.
fn scan_block_comment(src: &str, pos: &mut usize) {
    *pos += 2; // consume `/*`
    let mut depth = 1usize;
    while *pos < src.len() {
        if src[*pos..].starts_with("/*") {
            depth += 1;
            *pos += 2;
        } else if src[*pos..].starts_with("*/") {
            depth -= 1;
            *pos += 2;
            if depth == 0 {
                return;
            }
        } else {
            *pos += char_at(src, *pos).map_or(1, char::len_utf8);
        }
    }
}

/// Body of a `"…"` string, `*pos` just past the opening quote.
/// Backslash escapes any single following character (enough to keep
/// `\"` and `\\` from ending the literal early).
fn scan_string_body(src: &str, pos: &mut usize) {
    while *pos < src.len() {
        let c = char_at(src, *pos).expect("in bounds");
        *pos += c.len_utf8();
        if c == '\\' {
            if let Some(esc) = char_at(src, *pos) {
                *pos += esc.len_utf8();
            }
        } else if c == '"' {
            return;
        }
    }
}

/// `r"…"` / `r#"…"#` raw strings and `r#ident` raw identifiers. Returns
/// `None` when the `r` begins an ordinary identifier (`run`, `rx`).
fn scan_r_prefixed(src: &str, pos: &mut usize) -> Option<TokenKind> {
    let after_r = *pos + 1;
    let mut hashes = 0usize;
    while src.as_bytes().get(after_r + hashes) == Some(&b'#') {
        hashes += 1;
    }
    match char_at(src, after_r + hashes) {
        Some('"') => {
            *pos = after_r + hashes + 1;
            scan_raw_string_body(src, pos, hashes);
            Some(TokenKind::Str)
        }
        Some(c) if hashes == 1 && is_ident_start(c) => {
            *pos = after_r + 1;
            scan_ident(src, pos);
            Some(TokenKind::Ident)
        }
        _ => None,
    }
}

/// Body of a raw string: ends at `"` followed by `hashes` `#`s. No
/// escapes. Unterminated raw strings run to end of input.
fn scan_raw_string_body(src: &str, pos: &mut usize, hashes: usize) {
    while *pos < src.len() {
        let c = char_at(src, *pos).expect("in bounds");
        *pos += c.len_utf8();
        if c == '"' {
            let mut n = 0usize;
            while n < hashes && src.as_bytes().get(*pos + n) == Some(&b'#') {
                n += 1;
            }
            if n == hashes {
                *pos += n;
                return;
            }
        }
    }
}

/// `b"…"`, `b'…'`, `br"…"`, `c"…"`, `cr#"…"#` — byte and C literals.
/// Returns `None` when the `b`/`c` begins an ordinary identifier.
fn scan_bc_prefixed(src: &str, pos: &mut usize, allow_char: bool) -> Option<TokenKind> {
    let next = char_at(src, *pos + 1);
    match next {
        Some('"') => {
            *pos += 2;
            scan_string_body(src, pos);
            Some(TokenKind::Str)
        }
        Some('\'') if allow_char => {
            *pos += 1;
            // `b'x'` — scan_quote handles the rest (never a lifetime:
            // byte chars always close).
            Some(scan_quote(src, pos))
        }
        Some('r') => {
            // br"…" / cr#"…"# — reuse the raw-string scanner one byte in.
            let save = *pos;
            *pos += 1;
            match scan_r_prefixed(src, pos) {
                Some(TokenKind::Str) => Some(TokenKind::Str),
                _ => {
                    *pos = save;
                    None
                }
            }
        }
        _ => None,
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal), `*pos` at
/// the opening quote.
fn scan_quote(src: &str, pos: &mut usize) -> TokenKind {
    *pos += 1; // opening quote
    let Some(c1) = char_at(src, *pos) else {
        return TokenKind::Char; // lone trailing quote
    };
    if c1 == '\\' {
        // Escaped char literal: consume the escape, then everything up
        // to the closing quote (covers `'\u{1F600}'`).
        *pos += 1;
        if let Some(esc) = char_at(src, *pos) {
            *pos += esc.len_utf8();
        }
        while let Some(c) = char_at(src, *pos) {
            *pos += c.len_utf8();
            if c == '\'' {
                break;
            }
        }
        return TokenKind::Char;
    }
    if is_ident_start(c1) {
        // Could be `'a'` (char) or `'a` / `'static` (lifetime): consume
        // the ident run, then look for a closing quote.
        let mut p = *pos;
        while let Some(c) = char_at(src, p) {
            if !is_ident_continue(c) {
                break;
            }
            p += c.len_utf8();
        }
        if char_at(src, p) == Some('\'') {
            *pos = p + 1;
            return TokenKind::Char;
        }
        *pos = p;
        return TokenKind::Lifetime;
    }
    // Punctuation/digit char literal like `'('` or `'0'` — or an empty
    // `''`. Consume one char and the closing quote if present.
    *pos += c1.len_utf8();
    if c1 != '\'' && char_at(src, *pos) == Some('\'') {
        *pos += 1;
    }
    TokenKind::Char
}

/// Numeric literal: decimal/hex/octal/binary integers, floats with
/// fraction and exponent, type suffixes. Method calls (`1.max(2)`) and
/// ranges (`0..n`) are *not* swallowed: a `.` is only part of the
/// number when a digit follows it.
fn scan_number(src: &str, pos: &mut usize) {
    let bytes = src.as_bytes();
    if src[*pos..].starts_with("0x")
        || src[*pos..].starts_with("0X")
        || src[*pos..].starts_with("0o")
        || src[*pos..].starts_with("0b")
    {
        *pos += 2;
        while bytes
            .get(*pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            *pos += 1;
        }
        return;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || *b == b'_')
    {
        *pos += 1;
    }
    if bytes.get(*pos) == Some(&b'.') && bytes.get(*pos + 1).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        while bytes
            .get(*pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'_')
        {
            *pos += 1;
        }
    }
    if bytes.get(*pos) == Some(&b'e') || bytes.get(*pos) == Some(&b'E') {
        let sign = usize::from(matches!(bytes.get(*pos + 1), Some(b'+') | Some(b'-')));
        if bytes.get(*pos + 1 + sign).is_some_and(u8::is_ascii_digit) {
            *pos += 1 + sign;
            while bytes
                .get(*pos)
                .is_some_and(|b| b.is_ascii_digit() || *b == b'_')
            {
                *pos += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, `usize`).
    while let Some(c) = char_at(src, *pos) {
        if !is_ident_continue(c) {
            break;
        }
        *pos += c.len_utf8();
    }
}

/// Identifier run, `*pos` at its first character.
fn scan_ident(src: &str, pos: &mut usize) {
    while let Some(c) = char_at(src, *pos) {
        if !is_ident_continue(c) {
            break;
        }
        *pos += c.len_utf8();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn round_trip(src: &str) {
        let rebuilt: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn lossless_on_tricky_inputs() {
        for src in [
            "",
            "fn main() {}",
            "let s = \"a \\\" quote\";",
            "let r = r#\"raw \" inside\"#;",
            "let r = r##\"nested \"# fence\"##;",
            "let b = b\"bytes\"; let c = b'x';",
            "/* outer /* inner */ still comment */ fn f() {}",
            "// line with \"string\" and 'quote\n let x = 1;",
            "let lt: &'static str = \"s\"; let c = 'a'; let nl = '\\n';",
            "let e = '\\u{1F600}'; let tick = '\\'';",
            "let n = 0x_FF_u32 + 1_000.5e-3f64 + 0b1010;",
            "let unterminated = \"runs to eof",
            "/* unterminated comment",
            "let raw_id = r#match; let not_raw = rx;",
            "for i in 0..10 { x = i.max(3); }",
            "let shifted = 1 << 2 >> 3;",
            "émoji_idents_работают(); // ünïcode",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn comments_and_strings_classified() {
        let src = "// c1\n/// doc .unwrap()\n/* b */ \"s .unwrap()\" r\"raw\"";
        let toks = lex(src);
        let kinds: Vec<TokenKind> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Whitespace))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::LineComment,
                TokenKind::LineComment,
                TokenKind::BlockComment,
                TokenKind::Str,
                TokenKind::Str,
            ]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        let got = kinds("'a 'static 'a' '\\n' '_' b'z'");
        assert_eq!(
            got,
            vec![
                (TokenKind::Lifetime, "'a".into()),
                (TokenKind::Lifetime, "'static".into()),
                (TokenKind::Char, "'a'".into()),
                (TokenKind::Char, "'\\n'".into()),
                // `'_'` (with the closing quote) is a char literal of
                // the underscore; only a bare `'_` is a lifetime.
                (TokenKind::Char, "'_'".into()),
                (TokenKind::Char, "b'z'".into()),
            ]
        );
        let got = kinds("&'_ str");
        assert!(got.contains(&(TokenKind::Lifetime, "'_".into())), "{got:?}");
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "/* a /* b */ c */X";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text(src), "/* a /* b */ c */");
        assert_eq!(toks[1].text(src), "X");
    }

    #[test]
    fn raw_string_with_fence_is_one_token() {
        let src = "r##\"has \"# inside\"## tail";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text(src), "r##\"has \"# inside\"##");
    }

    #[test]
    fn numbers_do_not_swallow_methods_or_ranges() {
        let got = kinds("1.max(2) 0..3 1.5e3 2.0f64");
        assert_eq!(got[0], (TokenKind::Number, "1".into()));
        assert_eq!(got[1], (TokenKind::Punct, ".".into()));
        assert_eq!(got[2], (TokenKind::Ident, "max".into()));
        assert!(got.contains(&(TokenKind::Number, "0".into())));
        assert!(got.contains(&(TokenKind::Number, "1.5e3".into())));
        assert!(got.contains(&(TokenKind::Number, "2.0f64".into())));
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "ab\n  cd \"s\"\n'x'";
        let toks: Vec<Token> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!((toks[0].line, toks[0].col), (1, 1)); // ab
        assert_eq!((toks[1].line, toks[1].col), (2, 3)); // cd
        assert_eq!((toks[2].line, toks[2].col), (2, 6)); // "s"
        assert_eq!((toks[3].line, toks[3].col), (3, 1)); // 'x'
    }
}
