//! C002 `held-across-blocking`: a live `MutexGuard` spanning a blocking
//! operation in the same scope.
//!
//! Blocking operations: channel `send` / `recv` / `recv_timeout`,
//! thread `join` (empty-argument calls only, so `Path::join` and
//! `slice::join` stay out), `spawn`, and the pool entry points
//! `par_map` / `par_chunks_mut`. Holding a guard across any of these
//! stalls every other thread contending for the lock — and deadlocks
//! outright when the blocked-on thread needs the same lock.
//!
//! Liveness is positional (see [`super::guards`]): a closure *registered*
//! under a guard counts as running under it. That is conservative by
//! design; deliberate cases take an `analyze.allow` entry.

use crate::diag::{BaselineMode, Rule, Severity};
use crate::lexer::TokenKind;
use crate::scan::{FileIndex, FnItem};
use crate::workspace::Workspace;

use super::guards::{acquisitions, owns_token};
use super::{Context, Pass};

/// The C002 rule.
pub static HELD_ACROSS_BLOCKING: Rule = Rule {
    id: "C002",
    name: "held-across-blocking",
    severity: Severity::Error,
    brief: "no MutexGuard may stay live across send/recv/recv_timeout/join/spawn/par_map",
    baseline: BaselineMode::PerFile,
};

/// Method-style blocking calls (need a `.` or `::` before the name).
const BLOCKING_METHODS: &[&str] = &["send", "recv", "recv_timeout", "join", "spawn"];

/// Pool entry points — blocking however they are invoked.
const BLOCKING_FREE: &[&str] = &["par_map", "par_chunks_mut"];

/// The held-across-blocking pass.
pub struct BlockingPass;

impl Pass for BlockingPass {
    fn rule(&self) -> &'static Rule {
        &HELD_ACROSS_BLOCKING
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        for file in &ws.files {
            for item in &file.fns {
                if item.is_test || item.body.is_none() {
                    continue;
                }
                let acqs = acquisitions(file, item);
                if acqs.is_empty() {
                    continue;
                }
                let ops = blocking_ops(file, item);
                for a in &acqs {
                    for &(tok, name) in &ops {
                        if tok > a.tok && tok <= a.live.1 {
                            ctx.emit_at(
                                &HELD_ACROSS_BLOCKING,
                                file,
                                tok,
                                format!(
                                    "guard for `{}` is live across `{}()` in `{}` — \
                                     release the lock before blocking",
                                    a.lock, name, item.qualified
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// `(token, op name)` for every blocking call in `f`'s own body.
fn blocking_ops<'f>(file: &'f FileIndex, f: &FnItem) -> Vec<(usize, &'f str)> {
    let Some((open, close)) = f.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for i in open + 1..close {
        if file.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let text = file.text_of(i);
        let method = BLOCKING_METHODS.contains(&text);
        let free = BLOCKING_FREE.contains(&text);
        if !method && !free {
            continue;
        }
        let Some(n) = file.next_nt(i) else { continue };
        if !file.is_punct(n, '(') {
            continue;
        }
        if method {
            // Require a method/path call: `.name(` or `::name(`.
            let Some(p) = file.prev_nt(i) else { continue };
            let dotted = file.is_punct(p, '.')
                || (file.is_punct(p, ':')
                    && file.prev_nt(p).is_some_and(|q| file.is_punct(q, ':')));
            if !dotted {
                continue;
            }
            // `join` only with no arguments (`Path::join(sep)` et al.
            // take one).
            if text == "join" && file.close_of(n) != file.next_nt(n) {
                continue;
            }
        }
        if !owns_token(file, f, i) {
            continue;
        }
        out.push((i, text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::workspace::Workspace;

    fn run(src: &str) -> Vec<String> {
        let ws = Workspace::from_sources(vec![("crates/demo/src/a.rs".into(), src.into())]);
        let baseline = Baseline::default();
        let mut ctx = Context::new(&baseline);
        BlockingPass.run(&ws, &mut ctx);
        ctx.diagnostics.iter().map(|d| d.to_string()).collect()
    }

    #[test]
    fn guard_across_recv_flagged() {
        let got = run("fn f() { let g = m.lock(); let v = rx.recv(); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("recv"), "{got:?}");
    }

    #[test]
    fn drop_before_recv_is_clean() {
        let got = run("fn f() { let g = m.lock(); drop(g); let v = rx.recv(); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn temporary_does_not_reach_next_statement() {
        let got = run("fn f() { m.lock().push(1); let v = rx.recv(); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn send_inside_if_let_condition_block_flagged() {
        // The classic footgun: the condition temporary lives through the
        // block, so the send runs under the lock.
        let got = run("fn f() { if let Some(v) = m.lock().pop() { tx.send(v); } }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("send"), "{got:?}");
    }

    #[test]
    fn path_join_is_not_blocking() {
        let got = run("fn f() { let g = m.lock(); let p = dir.join(name); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn thread_join_is_blocking() {
        let got = run("fn f() { let g = m.lock(); handle.join(); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn par_map_under_guard_flagged() {
        let got = run("fn f() { let g = m.lock(); let ys = par_map(xs, work); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("par_map"), "{got:?}");
    }

    #[test]
    fn test_fns_are_exempt() {
        let got =
            run("#[cfg(test)]\nmod tests {\n    fn f() { let g = m.lock(); rx.recv(); }\n}\n");
        assert!(got.is_empty(), "{got:?}");
    }
}
