//! P-series policy passes: the old line-regex `srclint` rules, re-hosted
//! on the token stream. Being token-aware fixes the classic lies of the
//! regex lint: `.unwrap()` inside comments, doc comments, or string
//! literals no longer counts as code, and a `// unwrap-ok:` marker
//! inside a *string* no longer justifies anything.
//!
//! * **P001** `unwrap-ban` — `.unwrap()` is banned in non-test code.
//!   An `analyze.allow` entry only relaxes the rule to "with an
//!   adjacent `// unwrap-ok: <reason>` comment" ([`BaselineMode::InPass`]).
//! * **P002** `bin-expect-ban` — `.expect(` is banned in binary roots
//!   (`src/bin/**`) outside tests.
//! * **P003** `no-placeholders` — `todo!` / `unimplemented!` are banned
//!   everywhere, tests included.
//! * **P004** `no-f32-narrowing` — `as f32` is banned in the numerics
//!   crates (`crates/lsq`, `crates/core`).
//! * **P005** `crate-headers` — crate roots carry
//!   `#![deny(unsafe_code)]`; every `lib.rs` additionally
//!   `#![warn(missing_docs)]`.

use crate::diag::{BaselineMode, Rule, Severity};
use crate::lexer::TokenKind;
use crate::scan::FileIndex;
use crate::workspace::Workspace;

use super::{Context, Pass};

/// The P001 rule.
pub static UNWRAP_BAN: Rule = Rule {
    id: "P001",
    name: "unwrap-ban",
    severity: Severity::Error,
    brief: "no .unwrap() outside tests; allow-listed files still need // unwrap-ok: comments",
    baseline: BaselineMode::InPass,
};

/// The P002 rule.
pub static BIN_EXPECT_BAN: Rule = Rule {
    id: "P002",
    name: "bin-expect-ban",
    severity: Severity::Error,
    brief: "no .expect( in binary roots — report the error and exit nonzero",
    baseline: BaselineMode::PerFile,
};

/// The P003 rule.
pub static NO_PLACEHOLDERS: Rule = Rule {
    id: "P003",
    name: "no-placeholders",
    severity: Severity::Error,
    brief: "todo!/unimplemented! never ship, tests included",
    baseline: BaselineMode::PerFile,
};

/// The P004 rule.
pub static NO_F32_NARROWING: Rule = Rule {
    id: "P004",
    name: "no-f32-narrowing",
    severity: Severity::Error,
    brief: "no `as f32` in the numerics crates — keep f64 end to end",
    baseline: BaselineMode::PerFile,
};

/// The P005 rule.
pub static CRATE_HEADERS: Rule = Rule {
    id: "P005",
    name: "crate-headers",
    severity: Severity::Error,
    brief: "crate roots carry #![deny(unsafe_code)]; lib.rs also #![warn(missing_docs)]",
    baseline: BaselineMode::PerFile,
};

/// The comment marker that justifies an allowed unwrap call site.
const UNWRAP_OK: &str = "unwrap-ok:";

/// Crate directories where `as f32` narrowing is banned.
const NO_F32_CRATES: &[&str] = &["lsq", "core"];

/// True for `lib.rs` / `main.rs` / `src/bin/*` roots.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") || path.contains("src/bin/")
}

/// True when token `i` is `name` called as a method: `.name(…)`.
fn is_method_call(file: &FileIndex, i: usize, name: &str) -> bool {
    file.is_ident(i, name)
        && file.prev_nt(i).is_some_and(|p| file.is_punct(p, '.'))
        && file.next_nt(i).is_some_and(|n| file.is_punct(n, '('))
}

/// True when a `// unwrap-ok:` line comment justifies the token at `i`:
/// on the same line, or alone on the line above.
fn has_unwrap_ok(file: &FileIndex, i: usize) -> bool {
    let line = file.tokens[i].line;
    for (j, t) in file.tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment || !file.text_of(j).contains(UNWRAP_OK) {
            continue;
        }
        if t.line == line {
            return true;
        }
        if t.line + 1 == line {
            // Must be a pure comment line: no non-trivia token shares it.
            let alone = !file
                .tokens
                .iter()
                .enumerate()
                .any(|(k, u)| u.line == t.line && !u.is_trivia() && k != j);
            if alone {
                return true;
            }
        }
    }
    false
}

/// P001: the unwrap ban.
pub struct UnwrapBanPass;

impl Pass for UnwrapBanPass {
    fn rule(&self) -> &'static Rule {
        &UNWRAP_BAN
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        for file in &ws.files {
            let allowed = ctx.baseline().is_listed(UNWRAP_BAN.id, &file.path);
            for i in 0..file.tokens.len() {
                if !is_method_call(file, i, "unwrap") || file.is_test_token(i) {
                    continue;
                }
                let justified = has_unwrap_ok(file, i);
                match (allowed, justified) {
                    (true, true) => {
                        // Consume the baseline entry so it is not stale.
                        ctx.baseline().suppress(UNWRAP_BAN.id, &file.path);
                        ctx.record_suppressed(
                            &UNWRAP_BAN,
                            file,
                            i,
                            "justified `.unwrap()` under an analyze.allow entry".to_string(),
                        );
                    }
                    (true, false) => ctx.emit_at(
                        &UNWRAP_BAN,
                        file,
                        i,
                        format!(
                            "`.unwrap()` in an allow-listed file still needs an adjacent \
                             `// {UNWRAP_OK} <reason>` comment"
                        ),
                    ),
                    (false, _) => ctx.emit_at(
                        &UNWRAP_BAN,
                        file,
                        i,
                        format!(
                            "`.unwrap()` in library code — return a Result, use \
                             `expect(\"why this cannot fail\")`, or add an analyze.allow \
                             entry plus a `// {UNWRAP_OK}` comment"
                        ),
                    ),
                }
            }
        }
    }
}

/// P002: no `.expect(` in binary roots.
pub struct BinExpectPass;

impl Pass for BinExpectPass {
    fn rule(&self) -> &'static Rule {
        &BIN_EXPECT_BAN
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        for file in &ws.files {
            if !file.path.contains("src/bin/") {
                continue;
            }
            for i in 0..file.tokens.len() {
                if is_method_call(file, i, "expect") && !file.is_test_token(i) {
                    ctx.emit_at(
                        &BIN_EXPECT_BAN,
                        file,
                        i,
                        "`.expect(` in a binary root — report the error and exit nonzero, \
                         or move panic-happy diagnostics to `examples/`"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// P003: no shipped placeholders.
pub struct PlaceholderPass;

impl Pass for PlaceholderPass {
    fn rule(&self) -> &'static Rule {
        &NO_PLACEHOLDERS
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        for file in &ws.files {
            for i in 0..file.tokens.len() {
                let is_macro = (file.is_ident(i, "todo") || file.is_ident(i, "unimplemented"))
                    && file.next_nt(i).is_some_and(|n| file.is_punct(n, '!'));
                if is_macro {
                    ctx.emit_at(
                        &NO_PLACEHOLDERS,
                        file,
                        i,
                        format!("`{}!` must not ship", file.text_of(i)),
                    );
                }
            }
        }
    }
}

/// P004: no f32 narrowing in numerics crates.
pub struct F32NarrowingPass;

impl Pass for F32NarrowingPass {
    fn rule(&self) -> &'static Rule {
        &NO_F32_NARROWING
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        for file in &ws.files {
            let banned = NO_F32_CRATES
                .iter()
                .any(|c| file.path.starts_with(&format!("crates/{c}/")));
            if !banned {
                continue;
            }
            for i in 0..file.tokens.len() {
                if file.is_ident(i, "as")
                    && file.next_nt(i).is_some_and(|n| file.is_ident(n, "f32"))
                {
                    ctx.emit_at(
                        &NO_F32_NARROWING,
                        file,
                        i,
                        "`as f32` narrows f64 model math; keep f64 end to end".to_string(),
                    );
                }
            }
        }
    }
}

/// P005: required crate-root lint headers.
pub struct CrateHeadersPass;

impl Pass for CrateHeadersPass {
    fn rule(&self) -> &'static Rule {
        &CRATE_HEADERS
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        for file in &ws.files {
            if !is_crate_root(&file.path) {
                continue;
            }
            if !has_inner_attr(file, "deny", "unsafe_code") {
                ctx.emit(
                    &CRATE_HEADERS,
                    &file.path,
                    1,
                    1,
                    "crate root is missing `#![deny(unsafe_code)]`".to_string(),
                );
            }
            if file.path.ends_with("src/lib.rs") && !has_inner_attr(file, "warn", "missing_docs") {
                ctx.emit(
                    &CRATE_HEADERS,
                    &file.path,
                    1,
                    1,
                    "lib.rs is missing `#![warn(missing_docs)]`".to_string(),
                );
            }
        }
    }
}

/// True when the file contains `#![<level>(<lint>)]` as real tokens.
fn has_inner_attr(file: &FileIndex, level: &str, lint: &str) -> bool {
    (0..file.tokens.len()).any(|i| {
        file.is_punct(i, '#')
            && file.next_nt(i).is_some_and(|b| file.is_punct(b, '!'))
            && file
                .next_nt(i)
                .and_then(|b| file.next_nt(b))
                .is_some_and(|br| file.is_punct(br, '['))
            && {
                let inner = file
                    .next_nt(i)
                    .and_then(|b| file.next_nt(b))
                    .and_then(|br| file.next_nt(br));
                inner.is_some_and(|l| {
                    file.is_ident(l, level)
                        && file
                            .next_nt(l)
                            .and_then(|o| file.next_nt(o))
                            .is_some_and(|arg| file.is_ident(arg, lint))
                })
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::workspace::Workspace;

    fn run_with(pass: &dyn Pass, baseline: &Baseline, src: &str) -> (Vec<String>, Vec<String>) {
        let ws = Workspace::from_sources(vec![("crates/demo/src/a.rs".into(), src.into())]);
        let mut ctx = Context::new(baseline);
        pass.run(&ws, &mut ctx);
        (
            ctx.diagnostics.iter().map(|d| d.to_string()).collect(),
            ctx.suppressed.iter().map(|d| d.to_string()).collect(),
        )
    }

    fn run(pass: &dyn Pass, src: &str) -> Vec<String> {
        let baseline = Baseline::default();
        run_with(pass, &baseline, src).0
    }

    #[test]
    fn unwrap_in_library_code_flagged() {
        let got = run(&UnwrapBanPass, "fn f() { x().unwrap(); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn unwrap_in_tests_exempt() {
        let got = run(
            &UnwrapBanPass,
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x().unwrap(); }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn allowance_requires_adjacent_justification() {
        let baseline =
            Baseline::parse("P001 crates/demo/src/a.rs load-bearing legacy\n").expect("parses");
        // Same line.
        let (d, s) = run_with(
            &UnwrapBanPass,
            &baseline,
            "fn f() { x().unwrap(); } // unwrap-ok: infallible here\n",
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(s.len(), 1, "{s:?}");
        assert!(baseline.stale().is_empty());
        // Line above.
        let baseline =
            Baseline::parse("P001 crates/demo/src/a.rs load-bearing legacy\n").expect("parses");
        let (d, _) = run_with(
            &UnwrapBanPass,
            &baseline,
            "fn f() {\n    // unwrap-ok: slot filled above\n    x().unwrap();\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // Listed but bare: flagged, and the entry goes stale.
        let baseline =
            Baseline::parse("P001 crates/demo/src/a.rs load-bearing legacy\n").expect("parses");
        let (d, _) = run_with(&UnwrapBanPass, &baseline, "fn f() { x().unwrap(); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("unwrap-ok"), "{d:?}");
        assert_eq!(baseline.stale().len(), 1);
    }

    #[test]
    fn justification_comment_alone_does_not_help() {
        let got = run(
            &UnwrapBanPass,
            "// unwrap-ok: not listed, does nothing\nfn f() { x().unwrap(); }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn expect_flagged_only_in_bin_roots() {
        let ws = Workspace::from_sources(vec![
            (
                "crates/demo/src/bin/tool.rs".into(),
                "fn main() { x().expect(\"boom\"); }\n".into(),
            ),
            (
                "crates/demo/src/lib.rs".into(),
                "fn f() { x().expect(\"why\"); }\n".into(),
            ),
        ]);
        let baseline = Baseline::default();
        let mut ctx = Context::new(&baseline);
        BinExpectPass.run(&ws, &mut ctx);
        assert_eq!(ctx.diagnostics.len(), 1, "{:?}", ctx.diagnostics);
        assert!(
            ctx.diagnostics[0].file.contains("bin"),
            "{:?}",
            ctx.diagnostics
        );
    }

    #[test]
    fn todo_flagged_even_in_tests() {
        let got = run(
            &PlaceholderPass,
            "#[cfg(test)]\nmod tests {\n    fn g() { todo!() }\n}\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn as_f32_only_in_numerics_crates() {
        let src = "fn f(x: f64) -> f32 { x as f32 }\n";
        let baseline = Baseline::default();
        for (path, expect_hit) in [
            ("crates/lsq/src/a.rs", true),
            ("crates/core/src/a.rs", true),
            ("crates/sim/src/a.rs", false),
        ] {
            let ws = Workspace::from_sources(vec![(path.into(), src.into())]);
            let mut ctx = Context::new(&baseline);
            F32NarrowingPass.run(&ws, &mut ctx);
            assert_eq!(!ctx.diagnostics.is_empty(), expect_hit, "{path}");
        }
    }

    #[test]
    fn headers_checked_on_crate_roots() {
        let ws = Workspace::from_sources(vec![(
            "crates/demo/src/lib.rs".into(),
            "//! docs\npub fn f() {}\n".into(),
        )]);
        let baseline = Baseline::default();
        let mut ctx = Context::new(&baseline);
        CrateHeadersPass.run(&ws, &mut ctx);
        assert_eq!(ctx.diagnostics.len(), 2, "{:?}", ctx.diagnostics);

        let ws = Workspace::from_sources(vec![(
            "crates/demo/src/lib.rs".into(),
            "#![deny(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n".into(),
        )]);
        let mut ctx = Context::new(&baseline);
        CrateHeadersPass.run(&ws, &mut ctx);
        assert!(ctx.diagnostics.is_empty(), "{:?}", ctx.diagnostics);
    }
}
