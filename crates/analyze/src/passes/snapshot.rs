//! C003 `snapshot-discipline`: nothing mutable may be reachable through
//! `Arc<EngineSnapshot>`.
//!
//! The engine publishes estimator state to readers as an immutable
//! snapshot behind an `Arc`; readers must never observe change. Four
//! checks:
//!
//! * no struct reachable from `EngineSnapshot`'s fields (transitively,
//!   through workspace structs) may contain an interior-mutability type
//!   (`Mutex`, `RwLock`, `RefCell`, `Cell`, `UnsafeCell`, `OnceCell`,
//!   `OnceLock`, `LazyLock`, `Atomic*`);
//! * the type `&mut EngineSnapshot` must not appear in non-test code;
//! * `impl EngineSnapshot` must not define `&mut self` methods;
//! * `Arc::make_mut` / `Arc::get_mut` must not target a snapshot.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::{BaselineMode, Rule, Severity};
use crate::lexer::TokenKind;
use crate::scan::FileIndex;
use crate::workspace::Workspace;

use super::{Context, Pass};

/// The C003 rule.
pub static SNAPSHOT_DISCIPLINE: Rule = Rule {
    id: "C003",
    name: "snapshot-discipline",
    severity: Severity::Error,
    brief: "no &mut access or interior mutability reachable through Arc<EngineSnapshot>",
    baseline: BaselineMode::PerFile,
};

/// The snapshot type the analysis is rooted at.
const ROOT: &str = "EngineSnapshot";

/// Interior-mutability type names (plus any `Atomic*`).
const INTERIOR_MUT: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "Condvar",
];

/// The snapshot-discipline pass.
pub struct SnapshotPass;

/// One struct definition: uppercase idents in its field region, with
/// the file/token of each mention.
struct StructDef {
    /// `(type ident, file index, token index)` for each field mention.
    mentions: Vec<(String, usize, usize)>,
}

impl Pass for SnapshotPass {
    fn rule(&self) -> &'static Rule {
        &SNAPSHOT_DISCIPLINE
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        let structs = collect_structs(ws);

        // Transitive reachability from the snapshot root.
        let mut reachable: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        if structs.contains_key(ROOT) {
            reachable.insert(ROOT.to_string());
            queue.push_back(ROOT);
        }
        while let Some(name) = queue.pop_front() {
            let Some(def) = structs.get(name) else {
                continue;
            };
            for (ty, file_idx, tok) in &def.mentions {
                if is_interior_mut(ty) {
                    let file = &ws.files[*file_idx];
                    ctx.emit_at(
                        &SNAPSHOT_DISCIPLINE,
                        file,
                        *tok,
                        format!(
                            "`{name}` is reachable from Arc<{ROOT}> but holds \
                             interior-mutability type `{ty}` — snapshots must be deeply frozen"
                        ),
                    );
                } else if structs.contains_key(ty.as_str()) && !reachable.contains(ty) {
                    reachable.insert(ty.clone());
                    // Safe: the key lives in `structs`.
                    if let Some((key, _)) = structs.get_key_value(ty.as_str()) {
                        queue.push_back(key);
                    }
                }
            }
        }

        for file in &ws.files {
            scan_mut_refs(file, ctx);
            scan_mut_self_methods(file, ctx);
            scan_arc_mutation(file, ctx);
        }
    }
}

fn is_interior_mut(ty: &str) -> bool {
    INTERIOR_MUT.contains(&ty) || (ty.starts_with("Atomic") && ty.len() > "Atomic".len())
}

/// Collects every `struct Name …` definition and the uppercase idents
/// mentioned in its field region (named `{…}` or tuple `(…);` fields).
fn collect_structs(ws: &Workspace) -> BTreeMap<String, StructDef> {
    let mut out: BTreeMap<String, StructDef> = BTreeMap::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        for i in 0..file.tokens.len() {
            if !file.is_ident(i, "struct") {
                continue;
            }
            let Some(name_i) = file.next_nt(i) else {
                continue;
            };
            if file.tokens[name_i].kind != TokenKind::Ident {
                continue;
            }
            let name = file.text_of(name_i).to_string();
            let Some(region) = field_region(file, name_i) else {
                continue;
            };
            let entry = out.entry(name).or_insert_with(|| StructDef {
                mentions: Vec::new(),
            });
            for j in region.0 + 1..region.1 {
                let t = &file.tokens[j];
                if t.kind == TokenKind::Ident
                    && file
                        .text_of(j)
                        .starts_with(|c: char| c.is_ascii_uppercase())
                {
                    entry
                        .mentions
                        .push((file.text_of(j).to_string(), file_idx, j));
                }
            }
        }
    }
    out
}

/// The `{…}` or `(…)` field region of a struct whose name token is
/// `name_i`. Skips generics (`<…>` with depth tracking) and a `where`
/// clause; unit structs have no region.
fn field_region(file: &FileIndex, name_i: usize) -> Option<(usize, usize)> {
    let mut angle = 0i32;
    let mut j = file.next_nt(name_i)?;
    loop {
        if file.tokens[j].kind == TokenKind::Punct {
            match file.text_of(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle == 0 => return file.close_of(j).map(|c| (j, c)),
                "(" if angle == 0 => return file.close_of(j).map(|c| (j, c)),
                ";" if angle == 0 => return None,
                _ => {}
            }
        }
        j = file.next_nt(j)?;
    }
}

/// Flags the token sequence `& mut EngineSnapshot` outside tests.
fn scan_mut_refs(file: &FileIndex, ctx: &mut Context<'_>) {
    for i in 0..file.tokens.len() {
        if !file.is_punct(i, '&') || file.is_test_token(i) {
            continue;
        }
        let Some(m) = file.next_nt(i) else { continue };
        if !file.is_ident(m, "mut") {
            continue;
        }
        let Some(t) = file.next_nt(m) else { continue };
        if file.is_ident(t, ROOT) {
            ctx.emit_at(
                &SNAPSHOT_DISCIPLINE,
                file,
                t,
                format!("`&mut {ROOT}` — published snapshots are immutable; build a new one"),
            );
        }
    }
}

/// Flags `&mut self` methods on `impl EngineSnapshot`.
fn scan_mut_self_methods(file: &FileIndex, ctx: &mut Context<'_>) {
    for f in &file.fns {
        if f.is_test || f.impl_type.as_deref() != Some(ROOT) {
            continue;
        }
        // Signature extent: from the fn's name token to the body `{`
        // (or the declaration `;`).
        let Some(name_i) = (0..file.tokens.len())
            .find(|&i| file.tokens[i].line == f.line && file.is_ident(i, &f.name))
        else {
            continue;
        };
        let end = f.body.map_or(file.tokens.len(), |(open, _)| open);
        let mut i = name_i;
        while i < end {
            if file.is_punct(i, '&') {
                if let Some(m) = file.next_nt(i) {
                    if file.is_ident(m, "mut") {
                        if let Some(s) = file.next_nt(m) {
                            if file.is_ident(s, "self") {
                                ctx.emit_at(
                                    &SNAPSHOT_DISCIPLINE,
                                    file,
                                    s,
                                    format!(
                                        "`{ROOT}::{}` takes `&mut self` — snapshots must not \
                                         expose mutating methods",
                                        f.name
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

/// Flags `Arc::make_mut` / `Arc::get_mut` whose argument mentions a
/// snapshot.
fn scan_arc_mutation(file: &FileIndex, ctx: &mut Context<'_>) {
    for i in 0..file.tokens.len() {
        let t = &file.tokens[i];
        if t.kind != TokenKind::Ident || file.is_test_token(i) {
            continue;
        }
        let text = file.text_of(i);
        if text != "make_mut" && text != "get_mut" {
            continue;
        }
        // Must be `Arc::<name>`.
        let Some(c1) = file.prev_nt(i) else { continue };
        if !file.is_punct(c1, ':') {
            continue;
        }
        let Some(c2) = file.prev_nt(c1) else { continue };
        if !file.is_punct(c2, ':') {
            continue;
        }
        let Some(arc) = file.prev_nt(c2) else {
            continue;
        };
        if !file.is_ident(arc, "Arc") {
            continue;
        }
        let Some(open) = file.next_nt(i) else {
            continue;
        };
        if !file.is_punct(open, '(') {
            continue;
        }
        let Some(close) = file.close_of(open) else {
            continue;
        };
        let snapshotish = (open + 1..close).any(|j| {
            file.tokens[j].kind == TokenKind::Ident
                && (file.is_ident(j, ROOT) || file.text_of(j).contains("snapshot"))
        });
        if snapshotish {
            ctx.emit_at(
                &SNAPSHOT_DISCIPLINE,
                file,
                i,
                format!(
                    "`Arc::{text}` on a snapshot — readers hold clones of this Arc; \
                     build-and-swap instead of mutating in place"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::workspace::Workspace;

    fn run(src: &str) -> Vec<String> {
        let ws = Workspace::from_sources(vec![("crates/demo/src/a.rs".into(), src.into())]);
        let baseline = Baseline::default();
        let mut ctx = Context::new(&baseline);
        SnapshotPass.run(&ws, &mut ctx);
        ctx.diagnostics.iter().map(|d| d.to_string()).collect()
    }

    #[test]
    fn direct_interior_mutability_flagged() {
        let got = run("struct EngineSnapshot { cache: Mutex<u32> }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("Mutex"), "{got:?}");
    }

    #[test]
    fn transitive_interior_mutability_flagged() {
        let got = run("struct EngineSnapshot { inner: Inner }\n\
             struct Inner { hits: AtomicU64 }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("AtomicU64"), "{got:?}");
    }

    #[test]
    fn frozen_snapshot_is_clean() {
        let got = run(
            "struct EngineSnapshot { estimator: Estimator, generation: u64 }\n\
             struct Estimator { coef: Vec<f64> }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn unrelated_struct_with_mutex_is_fine() {
        let got = run("struct EngineSnapshot { generation: u64 }\n\
             struct Shared { state: Mutex<u32> }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn mut_ref_to_snapshot_flagged() {
        let got = run("struct EngineSnapshot { generation: u64 }\n\
             fn poke(s: &mut EngineSnapshot) { s.generation += 1; }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("&mut"), "{got:?}");
    }

    #[test]
    fn mut_self_method_flagged() {
        let got = run("struct EngineSnapshot { generation: u64 }\n\
             impl EngineSnapshot {\n    fn bump(&mut self) { self.generation += 1; }\n}\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("&mut self"), "{got:?}");
    }

    #[test]
    fn shared_self_method_is_clean() {
        let got = run("struct EngineSnapshot { generation: u64 }\n\
             impl EngineSnapshot {\n    fn generation(&self) -> u64 { self.generation }\n}\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn arc_make_mut_on_snapshot_flagged() {
        let got = run("fn f() { let s = Arc::make_mut(&mut snapshot); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn arc_make_mut_on_other_state_is_clean() {
        let got = run("fn f() { let db = Arc::make_mut(&mut state.db); }\n");
        assert!(got.is_empty(), "{got:?}");
    }
}
