//! Guard-liveness analysis shared by the lock-order and
//! held-across-blocking passes.
//!
//! For every `.lock()` call in a function body this recovers which lock
//! was taken (the receiver field, qualified by the enclosing impl type:
//! `Engine.state`) and the token range over which the returned
//! `MutexGuard` stays alive:
//!
//! * `let g = x.lock();` — alive until `drop(g)` or the end of the
//!   enclosing block;
//! * `let _ = x.lock();` — dropped immediately;
//! * `let (..) = …lock()…;` destructuring — conservatively alive to the
//!   end of the enclosing block;
//! * temporaries (`*x.lock() += 1;`, `x.lock().push(v);`) — alive to
//!   the end of the statement;
//! * condition temporaries (`if let Some(v) = x.lock().take() { … }`,
//!   `match x.lock() { … }`, `for v in x.lock().iter() { … }`) — alive
//!   through the attached block, matching Rust's extended temporary
//!   lifetimes (the classic if-let-deadlock footgun).
//!
//! Liveness is judged by token position, so code inside a closure that
//! is *registered* while a guard is held counts as running under the
//! guard even if it executes later. That is deliberately conservative:
//! the false-positive cost is an `analyze.allow` entry, the
//! false-negative cost is a deadlock in production.

use crate::lexer::TokenKind;
use crate::scan::{FileIndex, FnItem};

/// One `.lock()` call and the liveness of its guard.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Qualified lock identity, e.g. `Engine.state` or `m` in a free fn.
    pub lock: String,
    /// Token index of the `lock` identifier (diagnostic anchor).
    pub tok: usize,
    /// Inclusive token range over which the guard is live.
    pub live: (usize, usize),
}

/// All lock acquisitions in `f`'s body, in source order.
pub fn acquisitions(file: &FileIndex, f: &FnItem) -> Vec<Acquisition> {
    let Some((body_open, body_close)) = f.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut i = body_open + 1;
    while i < body_close {
        if !file.tokens[i].is_trivia() && is_lock_call(file, i) && owns_token(file, f, i) {
            if let Some(acq) = analyze_site(file, f, i, body_open, body_close) {
                out.push(acq);
            }
        }
        i += 1;
    }
    out
}

/// True when token `i` belongs to `f` directly — not to a `fn` item
/// nested inside `f`'s body (closures are not items and still count as
/// `f`'s code).
pub fn owns_token(file: &FileIndex, f: &FnItem, i: usize) -> bool {
    file.fn_containing(i).is_some_and(|g| g.body == f.body)
}

/// True when token `i` is the `lock` of a `.lock()` call.
fn is_lock_call(file: &FileIndex, i: usize) -> bool {
    if !file.is_ident(i, "lock") {
        return false;
    }
    let Some(prev) = file.prev_nt(i) else {
        return false;
    };
    if !file.is_punct(prev, '.') {
        return false;
    }
    let Some(open) = file.next_nt(i) else {
        return false;
    };
    if !file.is_punct(open, '(') {
        return false;
    }
    // `.lock()` takes no arguments.
    file.close_of(open)
        .is_some_and(|close| file.next_nt(open) == Some(close))
}

/// The receiver chain of the method call whose `.` sits at `dot`,
/// walking backward over `a.b`, `a::b`, indexing (`a[i]`) and call
/// parentheses. Returns the chain segments in source order plus the
/// token index where the chain begins.
fn receiver_chain(file: &FileIndex, dot: usize) -> (Vec<String>, usize) {
    let mut segments: Vec<String> = Vec::new();
    let mut j = match file.prev_nt(dot) {
        Some(j) => j,
        None => return (segments, dot),
    };
    let mut start = j;
    loop {
        let t = &file.tokens[j];
        match t.kind {
            TokenKind::Ident | TokenKind::Number => {
                segments.push(file.text_of(j).to_string());
                start = j;
            }
            TokenKind::Punct if matches!(file.text_of(j), ")" | "]") => {
                // Jump over the group; the ident before it (if any)
                // names the call/collection and is handled on the next
                // iteration.
                match file.open_of(j) {
                    Some(open) => {
                        start = open;
                        match file.prev_nt(open) {
                            Some(p) if matches!(file.tokens[p].kind, TokenKind::Ident) => {
                                j = p;
                                continue;
                            }
                            _ => break,
                        }
                    }
                    None => break,
                }
            }
            _ => break,
        }
        // Continue backward past `.` or `::`.
        let Some(p) = file.prev_nt(j) else { break };
        if file.is_punct(p, '.') {
            j = match file.prev_nt(p) {
                Some(q) => q,
                None => break,
            };
        } else if file.is_punct(p, ':') {
            let Some(q) = file.prev_nt(p) else { break };
            if file.is_punct(q, ':') {
                j = match file.prev_nt(q) {
                    Some(r) => r,
                    None => break,
                };
            } else {
                break;
            }
        } else {
            break;
        }
    }
    segments.reverse();
    (segments, start)
}

fn analyze_site(
    file: &FileIndex,
    f: &FnItem,
    lock_tok: usize,
    body_open: usize,
    body_close: usize,
) -> Option<Acquisition> {
    let dot = file.prev_nt(lock_tok)?;
    let (chain, start) = receiver_chain(file, dot);
    let name = lock_name(&chain, f);
    let args_open = file.next_nt(lock_tok)?; // `(`
    let args_close = file.close_of(args_open)?;

    // Statement start: the first non-trivia token after the nearest
    // `;` / `{` / `}` before the chain.
    let mut stmt_first = start;
    {
        let mut j = start;
        while let Some(p) = file.prev_nt(j) {
            if p <= body_open {
                break;
            }
            if file.is_punct(p, ';') || file.is_punct(p, '{') || file.is_punct(p, '}') {
                break;
            }
            stmt_first = p;
            j = p;
        }
    }

    let (_, block_close) = file
        .enclosing_brace(lock_tok)
        .unwrap_or((body_open, body_close));

    // `let <pat> = <chain>.lock();` — only a direct binding of the
    // guard counts: the first non-trivia token after `=` must be the
    // chain start (so `let v = *x.lock();` stays a temporary), and the
    // chain must *end* at the lock call (`…lock().post(msg)` binds the
    // post result, so the guard is a temporary). `.unwrap()`/`.expect(`
    // right after the lock still bind the guard (std-Mutex idiom).
    let mut lock_end = args_close;
    while let Some(d) = file.next_nt(lock_end) {
        if !file.is_punct(d, '.') {
            break;
        }
        let Some(m) = file.next_nt(d) else { break };
        if !(file.is_ident(m, "unwrap") || file.is_ident(m, "expect")) {
            break;
        }
        let Some(o) = file.next_nt(m) else { break };
        if !file.is_punct(o, '(') {
            break;
        }
        match file.close_of(o) {
            Some(c) => lock_end = c,
            None => break,
        }
    }
    let chained = file
        .next_nt(lock_end)
        .is_some_and(|n| file.is_punct(n, '.'));
    if !chained && file.is_ident(stmt_first, "let") {
        if let Some((pattern_idents, destructured, eq)) = let_pattern(file, stmt_first, start) {
            if file.next_nt(eq) == Some(start) {
                if destructured {
                    return Some(Acquisition {
                        lock: name,
                        tok: lock_tok,
                        live: (lock_tok, block_close),
                    });
                }
                if let [binding] = pattern_idents.as_slice() {
                    if binding == "_" {
                        // `let _ = x.lock();` drops immediately.
                        return Some(Acquisition {
                            lock: name,
                            tok: lock_tok,
                            live: (lock_tok, lock_tok),
                        });
                    }
                    let end =
                        find_drop(file, binding, args_close, block_close).unwrap_or(block_close);
                    return Some(Acquisition {
                        lock: name,
                        tok: lock_tok,
                        live: (lock_tok, end),
                    });
                }
                // Unrecognized pattern: conservative, block-lived.
                return Some(Acquisition {
                    lock: name,
                    tok: lock_tok,
                    live: (lock_tok, block_close),
                });
            }
        }
    }

    // Temporary: alive to the end of the statement, or through an
    // attached `{…}` block (match / if let / while let / for).
    let mut j = args_close;
    let end = loop {
        let Some(n) = file.next_nt(j) else {
            break block_close;
        };
        if n >= block_close {
            break block_close;
        }
        if file.tokens[n].kind == TokenKind::Punct {
            match file.text_of(n) {
                ";" => break n,
                "{" => break file.close_of(n).unwrap_or(block_close),
                "(" | "[" => {
                    j = file.close_of(n).unwrap_or(n);
                    continue;
                }
                "}" => break n,
                _ => {}
            }
        }
        j = n;
    };
    Some(Acquisition {
        lock: name,
        tok: lock_tok,
        live: (lock_tok, end),
    })
}

/// The lock's display name: the receiver chain with a leading `self`
/// stripped, qualified by the impl type when inside one
/// (`Engine.state`). A bare `m.lock()` in a free fn stays `m`.
fn lock_name(chain: &[String], f: &FnItem) -> String {
    let rest: Vec<&str> = chain
        .iter()
        .enumerate()
        .filter(|(i, s)| !(*i == 0 && *s == "self"))
        .map(|(_, s)| s.as_str())
        .collect();
    let base = if rest.is_empty() {
        "self".to_string()
    } else {
        rest.join(".")
    };
    match (&f.impl_type, chain.first().map(String::as_str)) {
        // Qualify self-relative fields by the impl type; leave locals
        // and free paths alone.
        (Some(ty), Some("self")) => format!("{ty}.{base}"),
        _ => base,
    }
}

/// The pattern idents of a `let` at `let_tok`, whether the pattern
/// destructures, and the token index of the `=`. `bound_before` caps
/// the search (the chain start).
fn let_pattern(
    file: &FileIndex,
    let_tok: usize,
    bound_before: usize,
) -> Option<(Vec<String>, bool, usize)> {
    let mut idents = Vec::new();
    let mut destructured = false;
    let mut j = file.next_nt(let_tok)?;
    while j < bound_before {
        let t = &file.tokens[j];
        match t.kind {
            TokenKind::Ident => {
                let s = file.text_of(j);
                if s != "mut" && s != "ref" {
                    idents.push(s.to_string());
                }
            }
            TokenKind::Punct => match file.text_of(j) {
                "=" => return Some((idents, destructured, j)),
                "(" | "[" | "{" => {
                    destructured = true;
                    j = file.close_of(j)?;
                }
                ":" => {
                    // Type ascription: skip to the `=`.
                    let mut k = j;
                    while let Some(n) = file.next_nt(k) {
                        if n >= bound_before {
                            return None;
                        }
                        if file.is_punct(n, '=')
                            && !file.next_nt(n).is_some_and(|m| file.is_punct(m, '='))
                        {
                            return Some((idents, destructured, n));
                        }
                        if file.is_punct(n, '(') || file.is_punct(n, '[') {
                            k = file.close_of(n)?;
                        } else {
                            k = n;
                        }
                    }
                    return None;
                }
                _ => {}
            },
            _ => {}
        }
        j = file.next_nt(j)?;
    }
    None
}

/// Finds `drop(<name>)` between `from` and `until`; returns the token
/// index of the `drop` call's close paren.
fn find_drop(file: &FileIndex, name: &str, from: usize, until: usize) -> Option<usize> {
    let mut i = from;
    while i < until {
        if file.is_ident(i, "drop") {
            if let Some(open) = file.next_nt(i) {
                if file.is_punct(open, '(') {
                    if let Some(arg) = file.next_nt(open) {
                        if file.is_ident(arg, name) {
                            if let Some(close) = file.next_nt(arg) {
                                if file.is_punct(close, ')') {
                                    return Some(close);
                                }
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileIndex;

    fn acqs(src: &str) -> Vec<(String, String)> {
        let file = FileIndex::new("crates/demo/src/a.rs".into(), src.into());
        let mut out = Vec::new();
        for f in &file.fns {
            for a in acquisitions(&file, f) {
                let live_text: String = (a.live.0..=a.live.1)
                    .map(|i| file.text_of(i))
                    .collect::<Vec<_>>()
                    .join("");
                out.push((a.lock, live_text));
            }
        }
        out
    }

    #[test]
    fn named_guard_lives_to_block_end() {
        let got = acqs("fn f() { let g = m.lock(); touch(); }\nfn t() {}\n");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "m");
        assert!(got[0].1.contains("touch"), "{got:?}");
    }

    #[test]
    fn drop_ends_liveness_early() {
        let got = acqs("fn f() { let g = m.lock(); use_it(); drop(g); after(); }\n");
        assert!(got[0].1.contains("use_it"), "{got:?}");
        assert!(!got[0].1.contains("after"), "{got:?}");
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let got = acqs("fn f() { m.lock().push(1); after(); }\n");
        assert!(got[0].1.contains("push"), "{got:?}");
        assert!(!got[0].1.contains("after"), "{got:?}");
    }

    #[test]
    fn deref_let_is_a_temporary() {
        let got = acqs("fn f() { let v = *m.lock(); after(); }\n");
        assert!(!got[0].1.contains("after"), "{got:?}");
    }

    #[test]
    fn if_let_condition_extends_through_block() {
        let got = acqs("fn f() { if let Some(v) = m.lock().take() { inside(); } outside(); }\n");
        assert!(got[0].1.contains("inside"), "{got:?}");
        assert!(!got[0].1.contains("outside"), "{got:?}");
    }

    #[test]
    fn match_scrutinee_extends_through_match() {
        let got = acqs("fn f() { match m.lock().state { _ => arm() } tail(); }\n");
        assert!(got[0].1.contains("arm"), "{got:?}");
        assert!(!got[0].1.contains("tail"), "{got:?}");
    }

    #[test]
    fn underscore_binding_dies_immediately() {
        let got = acqs("fn f() { let _ = m.lock(); after(); }\n");
        assert!(!got[0].1.contains("after"), "{got:?}");
    }

    #[test]
    fn impl_type_qualifies_self_fields() {
        let got = acqs(
            "struct Engine;\nimpl Engine {\n  fn go(&self) { let s = self.state.lock(); }\n}\n",
        );
        assert_eq!(got[0].0, "Engine.state");
    }

    #[test]
    fn tuple_field_and_indexed_receivers() {
        let got = acqs(
            "impl Shared {\n  fn a(&self) { let st = self.0.lock(); }\n\
             \n  fn b(&self) { self.mailboxes[i].lock().post(); }\n}\n",
        );
        assert_eq!(got[0].0, "Shared.0");
        assert_eq!(got[1].0, "Shared.mailboxes");
    }
}
