//! The pass framework: a [`Pass`] inspects the [`Workspace`] and emits
//! [`Diagnostic`]s through a [`Context`]. The context applies the
//! `analyze.allow` baseline for rules with [`BaselineMode::PerFile`];
//! rules with [`BaselineMode::InPass`] consult the baseline themselves
//! (the unwrap rule's allowance-plus-justification contract).

pub mod blocking;
pub mod guards;
pub mod lock_order;
pub mod panic_boundary;
pub mod policy;
pub mod snapshot;

use crate::baseline::Baseline;
use crate::diag::{BaselineMode, Diagnostic, Rule};
use crate::scan::FileIndex;
use crate::workspace::Workspace;

/// One analysis pass: owns a rule and emits its diagnostics.
pub trait Pass {
    /// The rule this pass enforces.
    fn rule(&self) -> &'static Rule;
    /// Runs the pass over the whole workspace.
    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>);
}

/// Shared emission state threaded through the passes.
pub struct Context<'a> {
    baseline: &'a Baseline,
    /// Findings that survived the baseline.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by an `analyze.allow` entry.
    pub suppressed: Vec<Diagnostic>,
}

impl<'a> Context<'a> {
    /// A fresh context over `baseline`.
    pub fn new(baseline: &'a Baseline) -> Context<'a> {
        Context {
            baseline,
            diagnostics: Vec::new(),
            suppressed: Vec::new(),
        }
    }

    /// The active baseline (for [`BaselineMode::InPass`] rules).
    pub fn baseline(&self) -> &Baseline {
        self.baseline
    }

    /// Emits a finding; `PerFile` rules route it through the baseline.
    pub fn emit(&mut self, rule: &'static Rule, file: &str, line: u32, col: u32, message: String) {
        let d = Diagnostic {
            rule,
            file: file.to_string(),
            line,
            col,
            message,
        };
        let suppressed =
            rule.baseline == BaselineMode::PerFile && self.baseline.suppress(rule.id, file);
        if suppressed {
            self.suppressed.push(d);
        } else {
            self.diagnostics.push(d);
        }
    }

    /// Emits a finding anchored at token `tok` of `file`.
    pub fn emit_at(&mut self, rule: &'static Rule, file: &FileIndex, tok: usize, message: String) {
        let t = &file.tokens[tok];
        self.emit(rule, &file.path, t.line, t.col, message);
    }

    /// Records a finding as baseline-suppressed without consulting the
    /// baseline — for `InPass` rules that did their own matching.
    pub fn record_suppressed(
        &mut self,
        rule: &'static Rule,
        file: &FileIndex,
        tok: usize,
        message: String,
    ) {
        let t = &file.tokens[tok];
        self.suppressed.push(Diagnostic {
            rule,
            file: file.path.clone(),
            line: t.line,
            col: t.col,
            message,
        });
    }
}
