//! C004 `panic-boundary`: spawned work must be supervised, and
//! stream-consumer loops must degrade instead of panicking.
//!
//! Two checks (both warnings — survivable, but they rot):
//!
//! * a `thread::spawn` / `thread::Builder…spawn` whose closure is not
//!   wrapped in `catch_unwind` and whose handle is not `.join()`ed in
//!   the same function is an unsupervised thread: a panic inside it
//!   vanishes (abort-on-panic is off) and the rest of the system keeps
//!   trusting a dead worker. Scoped spawns (`pool::scope(|s| s.spawn…)`)
//!   are exempt — the scope joins and rethrows.
//! * a function that loops over channel receives (`loop`/`while` +
//!   `.recv()`/`.recv_timeout()`) is a stream consumer; `panic!` /
//!   `unreachable!` inside it turns one bad measurement into a dead
//!   pipeline. Consumers report through their degradation ladder
//!   instead.

use crate::diag::{BaselineMode, Rule, Severity};
use crate::lexer::TokenKind;
use crate::scan::{FileIndex, FnItem};
use crate::workspace::Workspace;

use super::guards::owns_token;
use super::{Context, Pass};

/// The C004 rule.
pub static PANIC_BOUNDARY: Rule = Rule {
    id: "C004",
    name: "panic-boundary",
    severity: Severity::Warning,
    brief: "spawned closures need catch_unwind or a join; consumer loops must not panic",
    baseline: BaselineMode::PerFile,
};

/// The panic-boundary pass.
pub struct PanicBoundaryPass;

impl Pass for PanicBoundaryPass {
    fn rule(&self) -> &'static Rule {
        &PANIC_BOUNDARY
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        for file in &ws.files {
            for item in &file.fns {
                if item.is_test || item.body.is_none() {
                    continue;
                }
                check_spawns(file, item, ctx);
                check_consumer_loop(file, item, ctx);
            }
        }
    }
}

fn check_spawns(file: &FileIndex, f: &FnItem, ctx: &mut Context<'_>) {
    let Some((open, close)) = f.body else { return };
    for i in open + 1..close {
        if !file.is_ident(i, "spawn") || !owns_token(file, f, i) {
            continue;
        }
        let Some(args_open) = file.next_nt(i) else {
            continue;
        };
        if !file.is_punct(args_open, '(') {
            continue;
        }
        if !is_thread_spawn(file, i) {
            continue; // scoped spawns and non-thread `.spawn` APIs
        }
        let Some(args_close) = file.close_of(args_open) else {
            continue;
        };
        let caught = (args_open + 1..args_close).any(|j| file.is_ident(j, "catch_unwind"));
        let joined = has_empty_join(file, open, close);
        if !caught && !joined {
            ctx.emit_at(
                &PANIC_BOUNDARY,
                file,
                i,
                format!(
                    "thread spawned in `{}` without catch_unwind in the closure or a \
                     `.join()` in the same fn — a panic here disappears silently",
                    f.qualified
                ),
            );
        }
    }
}

/// True when the `spawn` at `i` goes through `std::thread` (path call
/// mentioning `thread`, or a builder chain mentioning `Builder` /
/// `thread`). Scoped spawns (`s.spawn` where `s` is the parameter of an
/// enclosing `scope(|s| …)` closure) and unrelated `.spawn` methods
/// return false.
fn is_thread_spawn(file: &FileIndex, i: usize) -> bool {
    let Some(p) = file.prev_nt(i) else {
        return false; // bare `spawn(…)`: a local helper, not std::thread
    };
    // `thread::spawn` — walk the `::` path backwards.
    if file.is_punct(p, ':') {
        let mut j = p;
        loop {
            let Some(c2) = file.prev_nt(j) else {
                return false;
            };
            if !file.is_punct(c2, ':') {
                return false;
            }
            let Some(seg) = file.prev_nt(c2) else {
                return false;
            };
            if file.is_ident(seg, "thread") {
                return true;
            }
            let Some(sep) = file.prev_nt(seg) else {
                return false;
            };
            if file.is_punct(sep, ':') {
                j = sep;
            } else {
                return false;
            }
        }
    }
    // `<receiver>.spawn(…)` — thread spawn iff the receiver chain
    // mentions the thread builder.
    if file.is_punct(p, '.') {
        let mut j = p;
        let mut hops = 0;
        while let Some(q) = file.prev_nt(j) {
            hops += 1;
            if hops > 40 {
                break;
            }
            match file.tokens[q].kind {
                TokenKind::Ident => {
                    let t = file.text_of(q);
                    if t == "Builder" || t == "thread" {
                        return true;
                    }
                    // Keep walking only while this looks like a chain
                    // (`.` or a full `::` separator).
                    let Some(r) = file.prev_nt(q) else { break };
                    if file.is_punct(r, '.') {
                        j = r;
                    } else if file.is_punct(r, ':') {
                        match file.prev_nt(r) {
                            Some(r2) if file.is_punct(r2, ':') => j = r2,
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                TokenKind::Punct if matches!(file.text_of(q), ")" | "]") => match file.open_of(q) {
                    Some(o) => j = o,
                    None => break,
                },
                _ => break,
            }
        }
        return false;
    }
    false
}

/// True when the token range contains an empty-argument `.join()`.
fn has_empty_join(file: &FileIndex, from: usize, to: usize) -> bool {
    (from..to).any(|j| {
        file.is_ident(j, "join")
            && file.prev_nt(j).is_some_and(|p| file.is_punct(p, '.'))
            && file.next_nt(j).is_some_and(|open| {
                file.is_punct(open, '(') && file.close_of(open) == file.next_nt(open)
            })
    })
}

/// Flags `panic!` / `unreachable!` in functions that loop over channel
/// receives.
fn check_consumer_loop(file: &FileIndex, f: &FnItem, ctx: &mut Context<'_>) {
    let Some((open, close)) = f.body else { return };
    let has_loop = (open + 1..close)
        .any(|j| (file.is_ident(j, "loop") || file.is_ident(j, "while")) && owns_token(file, f, j));
    if !has_loop {
        return;
    }
    let has_recv = (open + 1..close).any(|j| {
        (file.is_ident(j, "recv") || file.is_ident(j, "recv_timeout"))
            && file.prev_nt(j).is_some_and(|p| file.is_punct(p, '.'))
            && file.next_nt(j).is_some_and(|n| file.is_punct(n, '('))
            && owns_token(file, f, j)
    });
    if !has_recv {
        return;
    }
    for j in open + 1..close {
        if !owns_token(file, f, j) {
            continue;
        }
        if (file.is_ident(j, "panic") || file.is_ident(j, "unreachable"))
            && file.next_nt(j).is_some_and(|n| file.is_punct(n, '!'))
        {
            ctx.emit_at(
                &PANIC_BOUNDARY,
                file,
                j,
                format!(
                    "`{}!` inside stream-consumer `{}` — one bad input kills the \
                     pipeline; degrade through the fault ladder instead",
                    file.text_of(j),
                    f.qualified
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::workspace::Workspace;

    fn run(src: &str) -> Vec<String> {
        let ws = Workspace::from_sources(vec![("crates/demo/src/a.rs".into(), src.into())]);
        let baseline = Baseline::default();
        let mut ctx = Context::new(&baseline);
        PanicBoundaryPass.run(&ws, &mut ctx);
        ctx.diagnostics.iter().map(|d| d.to_string()).collect()
    }

    #[test]
    fn unsupervised_thread_spawn_flagged() {
        let got = run("fn f() { thread::spawn(move || work()); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("catch_unwind"), "{got:?}");
    }

    #[test]
    fn catch_unwind_in_closure_is_supervised() {
        let got = run("fn f() { thread::spawn(move || { let _ = catch_unwind(|| work()); }); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn join_in_same_fn_is_supervised() {
        let got = run("fn f() { let h = thread::spawn(work); h.join(); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn builder_spawn_flagged_too() {
        let got = run("fn f() { thread::Builder::new().name(n).spawn(move || work()); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn scoped_and_foreign_spawns_exempt() {
        let got = run("fn f() { scope(|s| { s.spawn(|| work()); }); }\n\
             fn g(sim: &Sim) { sim.spawn(task); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn panic_in_consumer_loop_flagged() {
        let got = run(
            "fn consume(rx: Receiver) { loop { match rx.recv() { Ok(v) => use_it(v), \
             Err(_) => panic!(\"dead\") } } }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("pipeline"), "{got:?}");
    }

    #[test]
    fn panic_outside_consumer_fn_not_this_rules_business() {
        let got = run("fn f() { panic!(\"no recv loop here\"); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn clean_consumer_loop_is_clean() {
        let got = run("fn consume(rx: Receiver) { while let Ok(v) = rx.recv() { use_it(v); } }\n");
        assert!(got.is_empty(), "{got:?}");
    }
}
