//! C001 `lock-order`: deadlock-shaped lock acquisition.
//!
//! Builds, per non-test function, the sequence of `etm_support::sync`
//! guard acquisitions ([`super::guards`]) and an approximate call graph
//! (callee matching by simple name). Three findings:
//!
//! * a lock re-acquired while its own guard is live (the wrapped
//!   mutexes are not re-entrant — this self-deadlocks);
//! * a call made while a lock is held to a function that (transitively)
//!   acquires that same lock;
//! * a cycle in the resulting lock-order graph (`A` held while taking
//!   `B` in one place, `B` held while taking `A` in another).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::diag::{BaselineMode, Rule, Severity};
use crate::scan::{FileIndex, FnItem};
use crate::workspace::Workspace;

use super::guards::{acquisitions, owns_token, Acquisition};
use super::{Context, Pass};

/// The C001 rule.
pub static LOCK_ORDER: Rule = Rule {
    id: "C001",
    name: "lock-order",
    severity: Severity::Error,
    brief: "lock acquisitions must form a cycle-free order; no lock may be re-acquired while held",
    baseline: BaselineMode::PerFile,
};

/// The lock-order pass.
pub struct LockOrderPass;

/// Per-function facts gathered in one sweep.
struct FnFacts<'w> {
    file: &'w FileIndex,
    item: &'w FnItem,
    acqs: Vec<Acquisition>,
    /// `(call token, callee simple name)` in source order.
    calls: Vec<(usize, String)>,
}

impl Pass for LockOrderPass {
    fn rule(&self) -> &'static Rule {
        &LOCK_ORDER
    }

    fn run(&self, ws: &Workspace, ctx: &mut Context<'_>) {
        let facts = gather(ws);
        // Simple name → indices into `facts` (a name can resolve to
        // several fns; the union of their locks is the conservative
        // answer).
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in facts.iter().enumerate() {
            by_name.entry(f.item.name.as_str()).or_default().push(i);
        }

        // Fixpoint: the set of locks each fn acquires, transitively
        // through calls.
        let mut acquired: Vec<BTreeSet<String>> = facts
            .iter()
            .map(|f| f.acqs.iter().map(|a| a.lock.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..facts.len() {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for (_, callee) in &facts[i].calls {
                    for &j in by_name.get(callee.as_str()).into_iter().flatten() {
                        for l in &acquired[j] {
                            if !acquired[i].contains(l) {
                                add.insert(l.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    acquired[i].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Edges `held → taken`, keeping the first site per ordered pair.
        // `(file path, token, message)` anchors the diagnostic.
        let mut edges: BTreeMap<(String, String), (usize, usize, String)> = BTreeMap::new();
        for (fi, f) in facts.iter().enumerate() {
            for a in &f.acqs {
                // Direct acquisitions while `a` is live.
                for b in &f.acqs {
                    if b.tok <= a.tok || b.tok > a.live.1 {
                        continue;
                    }
                    if b.lock == a.lock {
                        ctx.emit_at(
                            &LOCK_ORDER,
                            f.file,
                            b.tok,
                            format!(
                                "`{}` re-acquired in `{}` while its guard is still held \
                                 (non-re-entrant mutex: this self-deadlocks)",
                                a.lock, f.item.qualified
                            ),
                        );
                    } else {
                        edges
                            .entry((a.lock.clone(), b.lock.clone()))
                            .or_insert_with(|| {
                                (
                                    fi,
                                    b.tok,
                                    format!(
                                        "`{}` acquired in `{}` while `{}` is held",
                                        b.lock, f.item.qualified, a.lock
                                    ),
                                )
                            });
                    }
                }
                // Calls made while `a` is live, to fns that lock.
                for (call_tok, callee) in &f.calls {
                    if *call_tok <= a.tok || *call_tok > a.live.1 {
                        continue;
                    }
                    for &j in by_name.get(callee.as_str()).into_iter().flatten() {
                        if acquired[j].contains(&a.lock) {
                            ctx.emit_at(
                                &LOCK_ORDER,
                                f.file,
                                *call_tok,
                                format!(
                                    "`{}` calls `{}` while `{}` is held, and `{}` \
                                     (transitively) acquires `{}` — self-deadlock",
                                    f.item.qualified, callee, a.lock, callee, a.lock
                                ),
                            );
                        }
                        for l in &acquired[j] {
                            if *l == a.lock {
                                continue;
                            }
                            edges.entry((a.lock.clone(), l.clone())).or_insert_with(|| {
                                (
                                    fi,
                                    *call_tok,
                                    format!(
                                        "`{}` acquired via call to `{}` in `{}` while `{}` is held",
                                        l, callee, f.item.qualified, a.lock
                                    ),
                                )
                            });
                        }
                    }
                }
            }
        }

        // Cycle detection: any edge whose endpoints sit in one strongly
        // connected component closes a loop in the lock order.
        let nodes: Vec<&String> = {
            let mut s: BTreeSet<&String> = BTreeSet::new();
            for (a, b) in edges.keys() {
                s.insert(a);
                s.insert(b);
            }
            s.into_iter().collect()
        };
        let idx: HashMap<&str, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let adj: Vec<Vec<usize>> = {
            let mut adj = vec![Vec::new(); nodes.len()];
            for (a, b) in edges.keys() {
                adj[idx[a.as_str()]].push(idx[b.as_str()]);
            }
            adj
        };
        let comp = scc(&adj);
        for ((a, b), (fi, tok, msg)) in &edges {
            let (ca, cb) = (comp[idx[a.as_str()]], comp[idx[b.as_str()]]);
            if ca == cb {
                let members: Vec<&str> = nodes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| comp[*i] == ca)
                    .map(|(_, n)| n.as_str())
                    .collect();
                ctx.emit_at(
                    &LOCK_ORDER,
                    facts[*fi].file,
                    *tok,
                    format!(
                        "{msg} — closes a lock-order cycle over {{{}}}",
                        members.join(", ")
                    ),
                );
            }
        }
    }
}

/// Collects acquisitions and call sites for every non-test fn.
fn gather(ws: &Workspace) -> Vec<FnFacts<'_>> {
    let mut facts = Vec::new();
    for file in &ws.files {
        for item in &file.fns {
            if item.is_test || item.body.is_none() {
                continue;
            }
            facts.push(FnFacts {
                file,
                item,
                acqs: acquisitions(file, item),
                calls: call_sites(file, item),
            });
        }
    }
    facts
}

/// `(token, callee simple name)` for every call in `f`'s own body.
/// Method calls and path calls both reduce to the final ident; macro
/// invocations (`name!(…)`) are excluded by the `!`.
fn call_sites(file: &FileIndex, f: &FnItem) -> Vec<(usize, String)> {
    let Some((open, close)) = f.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for i in open + 1..close {
        if file.tokens[i].kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        let Some(n) = file.next_nt(i) else { continue };
        if !file.is_punct(n, '(') {
            continue;
        }
        // `fn name(` is a declaration, not a call.
        if file.prev_nt(i).is_some_and(|p| file.is_ident(p, "fn")) {
            continue;
        }
        // `drop(x)` is always `std::mem::drop` — `Drop::drop` cannot be
        // called explicitly, so resolving it to a workspace `fn drop`
        // would fabricate edges into every Drop impl.
        if file.is_ident(i, "drop") {
            continue;
        }
        if !owns_token(file, f, i) {
            continue;
        }
        out.push((i, file.text_of(i).trim_start_matches("r#").to_string()));
    }
    out
}

/// Tarjan's strongly connected components; returns a component id per
/// node. Recursive — the node set is distinct lock names, which stays
/// tiny for any real workspace.
fn scc(adj: &[Vec<usize>]) -> Vec<usize> {
    struct State<'g> {
        adj: &'g [Vec<usize>],
        index: Vec<usize>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        comp: Vec<usize>,
        next_index: usize,
        next_comp: usize,
    }
    fn visit(s: &mut State<'_>, v: usize) {
        s.index[v] = s.next_index;
        s.low[v] = s.next_index;
        s.next_index += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        for ci in 0..s.adj[v].len() {
            let w = s.adj[v][ci];
            if s.index[w] == usize::MAX {
                visit(s, w);
                s.low[v] = s.low[v].min(s.low[w]);
            } else if s.on_stack[w] {
                s.low[v] = s.low[v].min(s.index[w]);
            }
        }
        if s.low[v] == s.index[v] {
            while let Some(w) = s.stack.pop() {
                s.on_stack[w] = false;
                s.comp[w] = s.next_comp;
                if w == v {
                    break;
                }
            }
            s.next_comp += 1;
        }
    }
    let n = adj.len();
    let mut s = State {
        adj,
        index: vec![usize::MAX; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        comp: vec![usize::MAX; n],
        next_index: 0,
        next_comp: 0,
    };
    for v in 0..n {
        if s.index[v] == usize::MAX {
            visit(&mut s, v);
        }
    }
    s.comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::workspace::Workspace;

    fn run(src: &str) -> Vec<String> {
        let ws = Workspace::from_sources(vec![("crates/demo/src/a.rs".into(), src.into())]);
        let baseline = Baseline::default();
        let mut ctx = Context::new(&baseline);
        LockOrderPass.run(&ws, &mut ctx);
        ctx.diagnostics.iter().map(|d| d.to_string()).collect()
    }

    #[test]
    fn inverted_order_in_two_fns_is_a_cycle() {
        let got = run("fn ab() { let g = a.lock(); let h = b.lock(); }\n\
             fn ba() { let g = b.lock(); let h = a.lock(); }\n");
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got[0].contains("cycle"), "{got:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let got = run("fn one() { let g = a.lock(); let h = b.lock(); }\n\
             fn two() { let g = a.lock(); let h = b.lock(); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn reacquire_while_held_is_self_deadlock() {
        let got = run("fn f() { let g = m.lock(); let h = m.lock(); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("re-acquired"), "{got:?}");
    }

    #[test]
    fn drop_before_reacquire_is_clean() {
        let got = run("fn f() { let g = m.lock(); drop(g); let h = m.lock(); }\n");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn call_into_same_lock_is_self_deadlock() {
        let got = run("fn outer() { let g = m.lock(); helper(); }\n\
             fn helper() { let h = m.lock(); }\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("helper"), "{got:?}");
    }

    #[test]
    fn transitive_cycle_through_calls_detected() {
        let got = run("fn outer() { let g = a.lock(); helper(); }\n\
             fn helper() { let h = b.lock(); }\n\
             fn other() { let g = b.lock(); let h = a.lock(); }\n");
        assert!(!got.is_empty(), "{got:?}");
        assert!(got.iter().any(|m| m.contains("cycle")), "{got:?}");
    }

    #[test]
    fn test_fns_are_exempt() {
        let got = run(
            "#[cfg(test)]\nmod tests {\n    fn f() { let g = m.lock(); let h = m.lock(); }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }
}
