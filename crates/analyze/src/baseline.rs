//! The checked-in suppression baseline: `analyze.allow` at the
//! workspace root.
//!
//! Format, one entry per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! C004 crates/core/src/stream.rs  source thread is joined via SourceHandle::join
//! ```
//!
//! i.e. `<RULE_ID> <path> <justification…>` — the justification is
//! mandatory. An entry that matches no finding is *stale* and fails the
//! gate (same contract as the old `UNWRAP_ALLOWANCES`): the list can
//! only shrink.

use std::collections::BTreeSet;
use std::path::Path;

/// One parsed `analyze.allow` entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Rule ID the entry suppresses (`C004`).
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Why the finding is deliberate.
    pub reason: String,
    /// 1-based line in `analyze.allow` (for stale messages).
    pub line: u32,
}

/// The parsed baseline plus per-entry usage tracking.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<Entry>,
    used: std::cell::RefCell<BTreeSet<usize>>,
}

impl Baseline {
    /// Parses baseline text.
    ///
    /// # Errors
    /// Malformed lines (fewer than three fields) are errors: a
    /// justification-free suppression is not a suppression.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (rule, path, reason) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(why)) if !why.trim().is_empty() => {
                    (r.to_string(), p.to_string(), why.trim().to_string())
                }
                _ => {
                    return Err(format!(
                        "analyze.allow:{}: want `<RULE_ID> <path> <justification>`, got `{raw}`",
                        idx + 1
                    ))
                }
            };
            entries.push(Entry {
                rule,
                path,
                reason,
                line: u32::try_from(idx + 1).unwrap_or(u32::MAX),
            });
        }
        Ok(Baseline {
            entries,
            used: std::cell::RefCell::new(BTreeSet::new()),
        })
    }

    /// Loads `<root>/analyze.allow`; a missing file is an empty
    /// baseline.
    ///
    /// # Errors
    /// Unreadable or malformed baseline files.
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join("analyze.allow");
        if !path.is_file() {
            return Ok(Baseline::default());
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::parse(&text)
    }

    /// True when `(rule, file)` has an entry; marks nothing.
    pub fn is_listed(&self, rule: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && e.path == file)
    }

    /// Consumes a suppression for `(rule, file)`: returns true when an
    /// entry matches, and marks that entry used (for stale detection).
    pub fn suppress(&self, rule: &str, file: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == rule && e.path == file {
                self.used.borrow_mut().insert(i);
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding — these fail the gate.
    pub fn stale(&self) -> Vec<String> {
        let used = self.used.borrow();
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !used.contains(i))
            .map(|(_, e)| {
                format!(
                    "analyze.allow:{}: `{} {}` ({}) matches no finding — delete the entry",
                    e.line, e.rule, e.path, e.reason
                )
            })
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_suppresses() {
        let b = Baseline::parse(
            "# header comment\n\
             \n\
             C004 crates/core/src/stream.rs joined elsewhere by design\n\
             P001 crates/demo/src/a.rs legacy unwraps\n",
        )
        .expect("parses");
        assert_eq!(b.len(), 2);
        assert!(b.suppress("C004", "crates/core/src/stream.rs"));
        assert!(!b.suppress("C004", "crates/core/src/engine.rs"));
        assert!(b.is_listed("P001", "crates/demo/src/a.rs"));
        // P001 never *suppressed*, only listed — it is stale.
        let stale = b.stale();
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert!(stale[0].contains("P001"), "{stale:?}");
    }

    #[test]
    fn justification_is_mandatory() {
        assert!(Baseline::parse("C001 crates/a/src/x.rs\n").is_err());
        assert!(Baseline::parse("C001\n").is_err());
        assert!(Baseline::parse("C001 crates/a/src/x.rs   \n").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/nowhere")).expect("ok");
        assert!(b.is_empty());
        assert!(b.stale().is_empty());
    }
}
