//! Workspace loading: walks every `src/` tree (the root facade crate
//! plus `crates/*/src`, including `xtask` and this crate itself — the
//! analyzer dogfoods its own source) and indexes each `.rs` file.

use std::fs;
use std::path::{Path, PathBuf};

use crate::scan::FileIndex;

/// Every indexed source file of the workspace.
pub struct Workspace {
    /// Indexed files, sorted by path.
    pub files: Vec<FileIndex>,
}

impl Workspace {
    /// Walks and indexes the workspace rooted at `root`.
    ///
    /// # Errors
    /// Unreadable directories or files.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut trees: Vec<PathBuf> = vec![root.join("src")];
        let crates = root.join("crates");
        if crates.is_dir() {
            let entries = fs::read_dir(&crates)
                .map_err(|e| format!("cannot list {}: {e}", crates.display()))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("cannot read crates/ entry: {e}"))?;
                let src = entry.path().join("src");
                if src.is_dir() {
                    trees.push(src);
                }
            }
        }
        let mut paths = Vec::new();
        for tree in &trees {
            if tree.is_dir() {
                collect_rs_files(tree, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(FileIndex::new(rel, text));
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory `(path, text)` pairs — the
    /// fixture/test entry point.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<FileIndex> = sources
            .into_iter()
            .map(|(path, text)| FileIndex::new(path, text))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read dir entry: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
