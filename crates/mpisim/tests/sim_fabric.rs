//! Integration tests: collectives and contention on the discrete-event
//! fabric.

use etm_cluster::spec::paper_cluster;
use etm_cluster::{CommLibProfile, Configuration, Placement};
use etm_mpisim::coll::{barrier, binomial_bcast, gather, ring_bcast};
use etm_mpisim::{Comm, SimFabric, SimMsg};
use etm_sim::Simulation;

/// Runs `body` on every rank of the given configuration and returns the
/// simulation's end time.
fn run_ranks<F>(cfg: Configuration, body: F) -> f64
where
    F: Fn(&etm_mpisim::SimComm<'_>) + Send + Sync + Clone + 'static,
{
    let spec = paper_cluster(CommLibProfile::mpich122());
    let placement = Placement::new(&spec, &cfg).unwrap();
    let mut sim = Simulation::new();
    let fabric = SimFabric::build(&mut sim, &spec, &placement);
    for rank in 0..placement.len() {
        let seed = fabric.seed(rank);
        let body = body.clone();
        sim.spawn(format!("rank{rank}"), move |ctx| {
            let comm = seed.bind(ctx);
            body(&comm);
        });
    }
    sim.run().expect("ranks deadlocked")
}

#[test]
fn ring_bcast_works_on_sim_fabric() {
    let end = run_ranks(Configuration::p1m1_p2m2(1, 1, 8, 1), |comm| {
        let msg = if comm.rank() == 0 {
            Some(SimMsg::of(1_000_000.0))
        } else {
            None
        };
        let got = ring_bcast(comm, 0, msg);
        assert_eq!(got.bytes, 1_000_000.0);
    });
    // 8 inter-node hops of 1 MB at 11.5 MB/s each ≈ 0.087 s per hop; the
    // ring pipelines but our blocking sends serialize per rank: total
    // must be positive and bounded by P * per-hop.
    assert!(end > 0.05, "end {end}");
    assert!(end < 2.0, "end {end}");
}

#[test]
fn binomial_bcast_faster_than_ring_for_many_ranks() {
    // With store-and-forward blocking sends, binomial depth log2(P)
    // beats the ring's P-1 chain end-to-end latency for the last rank.
    let cfg = Configuration::p1m1_p2m2(1, 1, 8, 1);
    let bytes = 500_000.0;
    let t_ring = run_ranks(cfg.clone(), move |comm| {
        let msg = (comm.rank() == 0).then(|| SimMsg::of(bytes));
        let _ = ring_bcast(comm, 0, msg);
    });
    let t_binom = run_ranks(cfg, move |comm| {
        let msg = (comm.rank() == 0).then(|| SimMsg::of(bytes));
        let _ = binomial_bcast(comm, 0, msg);
    });
    assert!(
        t_binom < t_ring,
        "binomial {t_binom} should beat ring {t_ring}"
    );
}

#[test]
fn barrier_and_gather_on_sim_fabric() {
    run_ranks(Configuration::p1m1_p2m2(1, 2, 4, 1), |comm| {
        barrier(comm);
        let res = gather(comm, 0, SimMsg::of(comm.rank() as f64));
        if comm.rank() == 0 {
            let all = res.unwrap();
            for (r, m) in all.iter().enumerate() {
                assert_eq!(m.bytes, r as f64);
            }
        } else {
            assert!(res.is_none());
        }
        barrier(comm);
    });
}

#[test]
fn nic_contention_slows_concurrent_senders() {
    // Two senders on one node pushing to two receivers on other nodes
    // share the sender NIC: the run takes ~2x one transfer.
    let spec = paper_cluster(CommLibProfile::mpich122());
    let bytes = 2_000_000.0;
    let one_xfer = bytes / spec.network.bandwidth;

    // Both P-II CPUs of node2 send to the two CPUs of node3.
    let cfg = Configuration::p1m1_p2m2(0, 0, 4, 1);
    let placement = Placement::new(&spec, &cfg).unwrap();
    // Ranks are round-robin over CPUs: node2 holds ranks {0,1}? Find them.
    let on_first_node: Vec<usize> = placement
        .slots
        .iter()
        .filter(|s| s.node == placement.slots[0].node)
        .map(|s| s.rank)
        .collect();
    let elsewhere: Vec<usize> = placement
        .slots
        .iter()
        .filter(|s| s.node != placement.slots[0].node)
        .map(|s| s.rank)
        .collect();
    assert_eq!(on_first_node.len(), 2);
    assert_eq!(elsewhere.len(), 2);

    let mut sim = Simulation::new();
    let fabric = SimFabric::build(&mut sim, &spec, &placement);
    for (i, &rank) in on_first_node.iter().enumerate() {
        let seed = fabric.seed(rank);
        let dst = elsewhere[i];
        sim.spawn(format!("send{rank}"), move |ctx| {
            let comm = seed.bind(ctx);
            comm.send(dst, 5, SimMsg::of(bytes));
        });
    }
    for (i, &rank) in elsewhere.iter().enumerate() {
        let seed = fabric.seed(rank);
        let src = on_first_node[i];
        sim.spawn(format!("recv{rank}"), move |ctx| {
            let comm = seed.bind(ctx);
            let _ = comm.recv(src, 5);
        });
    }
    let end = sim.run().unwrap();
    // Sender NIC serializes the two outbound transfers (~2x), then the
    // shared receiver NIC adds its store-and-forward stage.
    assert!(
        end > 1.8 * one_xfer,
        "shared NIC must serialize: end {end}, one transfer {one_xfer}"
    );
    assert!(end < 4.5 * one_xfer, "end {end} vs {one_xfer}");
}

#[test]
fn intra_node_send_contends_with_compute() {
    // A 4 MB intra-node copy while a co-resident rank computes: the copy
    // shares the CPU, so it takes about twice as long as when idle.
    let spec = paper_cluster(CommLibProfile::mpich122());
    let cfg = Configuration::p1m1_p2m2(1, 3, 0, 0);
    let placement = Placement::new(&spec, &cfg).unwrap();
    let bytes = 4e6;
    let copy_alone = bytes / spec.comm_lib.intra_throughput(bytes);

    let run = |with_load: bool| {
        let mut sim = Simulation::new();
        let fabric = SimFabric::build(&mut sim, &spec, &placement);
        let s0 = fabric.seed(0);
        sim.spawn("sender", move |ctx| {
            let comm = s0.bind(ctx);
            comm.send(1, 9, SimMsg::of(bytes));
        });
        let s1 = fabric.seed(1);
        sim.spawn("receiver", move |ctx| {
            let comm = s1.bind(ctx);
            let _ = comm.recv(0, 9);
        });
        let s2 = fabric.seed(2);
        sim.spawn("load", move |ctx| {
            let comm = s2.bind(ctx);
            if with_load {
                comm.compute(10.0 * copy_alone);
            }
        });
        sim.run().unwrap()
    };
    let idle = run(false);
    let loaded = run(true);
    assert!(
        loaded > 1.5 * idle.max(copy_alone),
        "copy under load {loaded} vs idle {idle}"
    );
}
