//! Sub-communicators: a communicator over a subset of another
//! communicator's ranks (the `MPI_Comm_split` analogue).
//!
//! A 2-D process grid runs its collectives along process *rows* and
//! *columns*; [`SubComm`] gives each row/column its own rank space so the
//! generic collectives in [`crate::coll`] work unchanged.

use crate::Comm;

/// A view of a parent communicator restricted to `members` (parent
/// ranks), re-ranked densely in member order.
pub struct SubComm<'a, C: Comm> {
    parent: &'a C,
    members: Vec<usize>,
    my_index: usize,
}

impl<'a, C: Comm> SubComm<'a, C> {
    /// Creates the sub-communicator. The calling rank must be a member.
    ///
    /// # Panics
    /// Panics if `members` is empty, contains duplicates or out-of-range
    /// ranks, or does not contain the caller.
    pub fn new(parent: &'a C, members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "sub-communicator needs members");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate members");
        assert!(
            members.iter().all(|&r| r < parent.size()),
            "member rank out of range"
        );
        let my_index = members
            .iter()
            .position(|&r| r == parent.rank())
            .expect("caller must be a member of its sub-communicator");
        SubComm {
            parent,
            members,
            my_index,
        }
    }

    /// Parent rank of a sub-rank.
    pub fn to_parent(&self, sub_rank: usize) -> usize {
        self.members[sub_rank]
    }
}

impl<C: Comm> Comm for SubComm<'_, C> {
    type Msg = C::Msg;

    fn rank(&self) -> usize {
        self.my_index
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send(&self, to: usize, tag: u32, msg: Self::Msg) {
        self.parent.send(self.members[to], tag, msg);
    }

    fn recv(&self, from: usize, tag: u32) -> Self::Msg {
        self.parent.recv(self.members[from], tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coll::{barrier, gather, ring_bcast};
    use crate::threadcomm::{build_thread_comms, ThreadMsg};
    use std::thread;

    #[test]
    fn subcomm_reranks_densely() {
        // 6 ranks split into rows {0,1,2} and {3,4,5}.
        let comms = build_thread_comms(6);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let row: Vec<usize> = if c.rank() < 3 {
                        vec![0, 1, 2]
                    } else {
                        vec![3, 4, 5]
                    };
                    let sub = SubComm::new(&c, row.clone());
                    assert_eq!(sub.size(), 3);
                    assert_eq!(sub.rank(), c.rank() % 3);
                    assert_eq!(sub.to_parent(sub.rank()), c.rank());
                    // Row-local broadcast from sub-rank 0.
                    let payload = (sub.rank() == 0).then(|| ThreadMsg::floats(vec![row[0] as f64]));
                    let got = ring_bcast(&sub, 0, payload);
                    assert_eq!(got.data, vec![row[0] as f64]);
                    barrier(&sub);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn column_gather_through_subcomm() {
        // 4 ranks as a 2x2 grid; gather along columns {0,2} and {1,3}.
        let comms = build_thread_comms(4);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let col: Vec<usize> = if c.rank() % 2 == 0 {
                        vec![0, 2]
                    } else {
                        vec![1, 3]
                    };
                    let sub = SubComm::new(&c, col);
                    let mine = ThreadMsg::floats(vec![c.rank() as f64]);
                    if let Some(all) = gather(&sub, 0, mine) {
                        assert_eq!(sub.rank(), 0);
                        assert_eq!(all.len(), 2);
                        assert_eq!(all[1].data[0], (c.rank() + 2) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "member")]
    fn caller_must_be_member() {
        let mut comms = build_thread_comms(3);
        let c2 = comms.pop().unwrap();
        let _ = SubComm::new(&c2, vec![0, 1]);
    }
}
