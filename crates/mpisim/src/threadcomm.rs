//! Thread-backed communicator with real payloads.

use etm_support::channel::{unbounded, Receiver, Sender};

use crate::Comm;

/// A real-data message: a tag plus an `f64` payload (HPL panels, pivot
/// rows and broadcast blocks are all `f64` arrays).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThreadMsg {
    /// User payload.
    pub data: Vec<f64>,
    /// Side-channel integers (pivot indices etc.).
    pub ints: Vec<usize>,
}

impl ThreadMsg {
    /// A message carrying only floats.
    pub fn floats(data: Vec<f64>) -> Self {
        ThreadMsg {
            data,
            ints: Vec::new(),
        }
    }
}

type Wire = (u32, ThreadMsg);

/// One rank's endpoint of a fully-connected thread fabric.
///
/// Created in bulk by [`build_thread_comms`]; each endpoint is moved into
/// its rank's thread.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// `txs[to]` sends to rank `to`.
    txs: Vec<Sender<Wire>>,
    /// `rxs[from]` receives from rank `from`.
    rxs: Vec<Receiver<Wire>>,
}

impl Comm for ThreadComm {
    type Msg = ThreadMsg;

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: u32, msg: ThreadMsg) {
        self.txs[to]
            .send((tag, msg))
            .expect("receiver rank hung up");
    }

    fn recv(&self, from: usize, tag: u32) -> ThreadMsg {
        let (got_tag, msg) = self.rxs[from].recv().expect("sender rank hung up");
        assert_eq!(
            got_tag, tag,
            "rank {}: expected tag {tag} from {from}, got {got_tag}",
            self.rank
        );
        msg
    }
}

/// Builds a fully connected fabric of `size` endpoints.
///
/// # Panics
/// Panics if `size == 0`.
pub fn build_thread_comms(size: usize) -> Vec<ThreadComm> {
    assert!(size > 0, "need at least one rank");
    // channels[from][to]
    let mut senders: Vec<Vec<Option<Sender<Wire>>>> = vec![];
    let mut receivers: Vec<Vec<Option<Receiver<Wire>>>> = vec![];
    for _ in 0..size {
        senders.push((0..size).map(|_| None).collect());
        receivers.push((0..size).map(|_| None).collect());
    }
    for from in 0..size {
        for to in 0..size {
            let (tx, rx) = unbounded();
            senders[from][to] = Some(tx);
            receivers[to][from] = Some(rx);
        }
    }
    let mut comms = Vec::with_capacity(size);
    for rank in 0..size {
        let txs = senders[rank]
            .iter_mut()
            .map(|s| s.take().expect("sender built"))
            .collect();
        let rxs = receivers[rank]
            .iter_mut()
            .map(|r| r.take().expect("receiver built"))
            .collect();
        comms.push(ThreadComm {
            rank,
            size,
            txs,
            rxs,
        });
    }
    comms
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_roundtrip() {
        let mut comms = build_thread_comms(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            let m = c1.recv(0, 7);
            assert_eq!(m.data, vec![1.0, 2.0]);
            c1.send(0, 8, ThreadMsg::floats(vec![3.0]));
        });
        c0.send(1, 7, ThreadMsg::floats(vec![1.0, 2.0]));
        let back = c0.recv(1, 8);
        assert_eq!(back.data, vec![3.0]);
        h.join().unwrap();
    }

    #[test]
    fn per_pair_fifo_ordering() {
        let mut comms = build_thread_comms(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        for i in 0..10 {
            c0.send(1, i, ThreadMsg::floats(vec![i as f64]));
        }
        let h = thread::spawn(move || {
            for i in 0..10 {
                let m = c1.recv(0, i);
                assert_eq!(m.data[0], i as f64);
            }
        });
        h.join().unwrap();
    }

    #[test]
    fn ints_sidechannel() {
        let mut comms = build_thread_comms(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(
            1,
            0,
            ThreadMsg {
                data: vec![],
                ints: vec![4, 2],
            },
        );
        assert_eq!(c1.recv(0, 0).ints, vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "expected tag")]
    fn tag_mismatch_panics() {
        let mut comms = build_thread_comms(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 1, ThreadMsg::default());
        let _ = c1.recv(0, 2);
    }

    #[test]
    fn self_send_works() {
        let mut comms = build_thread_comms(1);
        let c0 = comms.pop().unwrap();
        c0.send(0, 3, ThreadMsg::floats(vec![9.0]));
        assert_eq!(c0.recv(0, 3).data, vec![9.0]);
    }
}
