//! Collective operations, generic over [`Comm`].
//!
//! HPL broadcasts each factored panel along the process row; its default
//! `1ring` algorithm is the [`ring_bcast`] here. [`binomial_bcast`] is
//! the log-depth alternative, and [`barrier`] is a 0-byte gather/release
//! used for run synchronization. Implemented once so the thread and the
//! discrete-event backends execute byte-identical communication patterns.

use crate::Comm;

/// Tag namespace base for collectives (keeps them clear of HPL's tags).
const COLL_TAG: u32 = 0xC011_0000;

/// Increasing-ring broadcast (HPL's `1ring`): root sends to the next
/// rank, each rank forwards to its successor. `P − 1` messages total,
/// pipelined along the ring.
///
/// Non-root callers pass `None` and receive the payload; the root passes
/// `Some(msg)` and gets it back.
///
/// # Panics
/// Panics if the root passes `None` or a non-root passes `Some`.
pub fn ring_bcast<C: Comm>(comm: &C, root: usize, msg: Option<C::Msg>) -> C::Msg {
    let p = comm.size();
    let me = comm.rank();
    if p == 1 {
        return msg.expect("root must supply the message");
    }
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    if me == root {
        let m = msg.expect("root must supply the message");
        comm.send(next, COLL_TAG, m.clone());
        m
    } else {
        assert!(
            msg.is_none(),
            "non-root rank {me} must not supply a message"
        );
        let m = comm.recv(prev, COLL_TAG);
        if next != root {
            comm.send(next, COLL_TAG, m.clone());
        }
        m
    }
}

/// Binomial-tree broadcast: log₂(P) rounds; in round `k`, ranks within
/// `2^k` of the root (in root-relative numbering) forward to rank
/// `+2^k`.
///
/// # Panics
/// Same contract as [`ring_bcast`].
pub fn binomial_bcast<C: Comm>(comm: &C, root: usize, msg: Option<C::Msg>) -> C::Msg {
    let p = comm.size();
    let me = comm.rank();
    let rel = (me + p - root) % p; // root-relative rank
    let mut have: Option<C::Msg> = if rel == 0 {
        Some(msg.expect("root must supply the message"))
    } else {
        assert!(
            msg.is_none(),
            "non-root rank {me} must not supply a message"
        );
        None
    };
    let mut span = 1;
    while span < p {
        if let Some(m) = &have {
            if rel < span && rel + span < p {
                let dst = (rel + span + root) % p;
                comm.send(dst, COLL_TAG + 1, m.clone());
            }
        } else if rel < 2 * span && rel >= span {
            let src = (rel - span + root) % p;
            have = Some(comm.recv(src, COLL_TAG + 1));
        }
        span *= 2;
    }
    have.expect("broadcast must reach every rank")
}

/// Barrier: gather 0-byte tokens to rank 0, then a release broadcast.
pub fn barrier<C: Comm>(comm: &C) {
    let p = comm.size();
    let me = comm.rank();
    if p == 1 {
        return;
    }
    if me == 0 {
        for from in 1..p {
            let _ = comm.recv(from, COLL_TAG + 2);
        }
        for to in 1..p {
            comm.send(to, COLL_TAG + 3, C::Msg::default());
        }
    } else {
        comm.send(0, COLL_TAG + 2, C::Msg::default());
        let _ = comm.recv(0, COLL_TAG + 3);
    }
}

/// Gathers one message from every rank to the root; returns `Some(msgs)`
/// (indexed by rank) at the root and `None` elsewhere.
pub fn gather<C: Comm>(comm: &C, root: usize, msg: C::Msg) -> Option<Vec<C::Msg>> {
    let p = comm.size();
    let me = comm.rank();
    if me == root {
        let mut all: Vec<Option<C::Msg>> = (0..p).map(|_| None).collect();
        all[root] = Some(msg);
        for from in (0..p).filter(|&r| r != root) {
            all[from] = Some(comm.recv(from, COLL_TAG + 4));
        }
        Some(all.into_iter().map(|m| m.expect("gathered")).collect())
    } else {
        comm.send(root, COLL_TAG + 4, msg);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threadcomm::{build_thread_comms, ThreadMsg};
    use std::thread;

    fn run_all<F>(p: usize, f: F)
    where
        F: Fn(crate::ThreadComm) + Send + Sync + Clone + 'static,
    {
        let comms = build_thread_comms(p);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn ring_bcast_delivers_to_all() {
        for p in [1usize, 2, 3, 7] {
            for root in 0..p {
                run_all(p, move |c| {
                    let payload = if c.rank() == root {
                        Some(ThreadMsg::floats(vec![root as f64, 42.0]))
                    } else {
                        None
                    };
                    let got = ring_bcast(&c, root, payload);
                    assert_eq!(got.data, vec![root as f64, 42.0]);
                });
            }
        }
    }

    #[test]
    fn binomial_bcast_delivers_to_all() {
        for p in [1usize, 2, 4, 5, 8] {
            for root in [0, p / 2, p - 1] {
                run_all(p, move |c| {
                    let payload = if c.rank() == root {
                        Some(ThreadMsg::floats(vec![13.0]))
                    } else {
                        None
                    };
                    let got = binomial_bcast(&c, root, payload);
                    assert_eq!(got.data, vec![13.0]);
                });
            }
        }
    }

    #[test]
    fn barrier_completes() {
        run_all(6, |c| {
            for _ in 0..5 {
                barrier(&c);
            }
        });
    }

    #[test]
    fn gather_collects_by_rank() {
        run_all(5, |c| {
            let mine = ThreadMsg::floats(vec![c.rank() as f64]);
            match gather(&c, 2, mine) {
                Some(all) => {
                    assert_eq!(c.rank(), 2);
                    for (r, m) in all.iter().enumerate() {
                        assert_eq!(m.data, vec![r as f64]);
                    }
                }
                None => assert_ne!(c.rank(), 2),
            }
        });
    }
}
