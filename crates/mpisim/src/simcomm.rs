//! Discrete-event-backed communicator: messages carry byte counts and
//! sending charges virtual time against the shared CPU/NIC resources.

use std::sync::Arc;

use etm_cluster::{ClusterSpec, CommLibProfile, NetworkSpec, Placement};
use etm_sim::{Ctx, MailboxId, ResourceId, Simulation};

use crate::Comm;

/// A timed message: no payload, just its size on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimMsg {
    /// Message size in bytes.
    pub bytes: f64,
}

impl SimMsg {
    /// A message of `bytes` bytes.
    pub fn of(bytes: f64) -> Self {
        SimMsg { bytes }
    }
}

struct FabricShared {
    node_of_rank: Vec<usize>,
    /// Per-rank CPU resource (speed 1.0: one second of CPU work per
    /// virtual second when uncontended).
    cpu_of_rank: Vec<ResourceId>,
    /// Per-node NIC resource (speed = bandwidth in bytes/s). Indexed by
    /// node id; unused nodes hold `None`.
    nic_of_node: Vec<Option<ResourceId>>,
    /// `mailboxes[from * size + to]`.
    mailboxes: Vec<MailboxId>,
    size: usize,
    profile: CommLibProfile,
    network: NetworkSpec,
}

/// The communication fabric of one simulated run: resources + mailboxes
/// for all ranks. Build it once per [`Simulation`], then hand each rank
/// its [`SimCommSeed`].
pub struct SimFabric {
    shared: Arc<FabricShared>,
}

impl SimFabric {
    /// Registers CPUs, NICs and mailboxes for `placement` in `sim`.
    ///
    /// One CPU resource is created per *used* (node, cpu) pair — ranks
    /// sharing a CPU share its processor-sharing resource, which is how
    /// multiprocessing contention arises. One NIC resource is created per
    /// used node.
    pub fn build(sim: &mut Simulation, spec: &ClusterSpec, placement: &Placement) -> SimFabric {
        let size = placement.len();
        let mut nic_of_node: Vec<Option<ResourceId>> = vec![None; spec.nodes.len()];
        for &node in &placement.used_nodes() {
            nic_of_node[node] = Some(sim.add_shared_resource(
                format!("nic:{}", spec.nodes[node].name),
                spec.network.bandwidth,
            ));
        }
        // CPU resources, deduplicated by (node, cpu).
        let mut cpu_map: Vec<((usize, usize), ResourceId)> = Vec::new();
        let mut cpu_of_rank = Vec::with_capacity(size);
        for slot in &placement.slots {
            let key = (slot.node, slot.cpu);
            let res = match cpu_map.iter().find(|(k, _)| *k == key) {
                Some((_, r)) => *r,
                None => {
                    let r = sim.add_shared_resource(
                        format!("cpu:{}:{}", spec.nodes[slot.node].name, slot.cpu),
                        1.0,
                    );
                    cpu_map.push((key, r));
                    r
                }
            };
            cpu_of_rank.push(res);
        }
        let mailboxes = (0..size * size).map(|_| sim.add_mailbox()).collect();
        SimFabric {
            shared: Arc::new(FabricShared {
                node_of_rank: placement.slots.iter().map(|s| s.node).collect(),
                cpu_of_rank,
                nic_of_node,
                mailboxes,
                size,
                profile: spec.comm_lib.clone(),
                network: spec.network,
            }),
        }
    }

    /// Derates the CPU resources of every rank placed on a PE of
    /// `kind`: each affected processor-sharing CPU serves `slowdown`×
    /// slower for the rest of the run. This is the execution-side
    /// straggler model — the slowdown propagates through contention and
    /// communication overlap inside the discrete-event kernel instead
    /// of being a post-hoc scale on measured phase times. CPUs shared
    /// by several ranks are derated once.
    ///
    /// # Panics
    /// Panics if `slowdown` is not a finite positive factor.
    pub fn derate_kind_cpus(
        &self,
        sim: &mut Simulation,
        placement: &Placement,
        kind: etm_cluster::KindId,
        slowdown: f64,
    ) {
        let mut done: Vec<ResourceId> = Vec::new();
        for (rank, slot) in placement.slots.iter().enumerate() {
            if slot.kind != kind {
                continue;
            }
            let res = self.shared.cpu_of_rank[rank];
            if !done.contains(&res) {
                sim.derate_resource(res, slowdown);
                done.push(res);
            }
        }
    }

    /// Derates every used NIC resource by `slowdown` — the transient
    /// cluster-wide network degradation model (a flaky switch, a
    /// saturated uplink).
    ///
    /// # Panics
    /// Panics if `slowdown` is not a finite positive factor.
    pub fn derate_nics(&self, sim: &mut Simulation, slowdown: f64) {
        for res in self.shared.nic_of_node.iter().flatten() {
            sim.derate_resource(*res, slowdown);
        }
    }

    /// The seed for `rank`, to be moved into that rank's spawned process.
    pub fn seed(&self, rank: usize) -> SimCommSeed {
        assert!(rank < self.shared.size, "rank out of range");
        SimCommSeed {
            rank,
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Per-rank half-built communicator; bind it to the process's [`Ctx`]
/// inside the spawned closure.
pub struct SimCommSeed {
    rank: usize,
    shared: Arc<FabricShared>,
}

impl SimCommSeed {
    /// Binds the seed to the executing process's context.
    pub fn bind(self, ctx: &Ctx) -> SimComm<'_> {
        SimComm {
            ctx,
            rank: self.rank,
            shared: self.shared,
        }
    }
}

/// A rank's endpoint on the simulated fabric.
pub struct SimComm<'a> {
    ctx: &'a Ctx,
    rank: usize,
    shared: Arc<FabricShared>,
}

impl SimComm<'_> {
    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.ctx.now()
    }

    /// The CPU resource this rank runs on (shared with co-resident
    /// ranks).
    pub fn cpu(&self) -> ResourceId {
        self.shared.cpu_of_rank[self.rank]
    }

    /// Performs `seconds` of uncontended-equivalent CPU work (elongated
    /// by processor sharing if co-resident ranks compute simultaneously).
    pub fn compute(&self, seconds: f64) {
        self.ctx.compute(self.cpu(), seconds);
    }

    /// Advances virtual time without consuming any resource.
    pub fn idle(&self, seconds: f64) {
        self.ctx.hold(seconds);
    }

    /// Whether `other` is on the same node (intra-node path).
    pub fn same_node(&self, other: usize) -> bool {
        self.shared.node_of_rank[self.rank] == self.shared.node_of_rank[other]
    }

    fn mailbox(&self, from: usize, to: usize) -> MailboxId {
        self.shared.mailboxes[from * self.shared.size + to]
    }
}

impl Comm for SimComm<'_> {
    type Msg = SimMsg;

    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    /// Charges the transfer cost to the sender, then posts the message.
    ///
    /// * self-send: free (in-process hand-off);
    /// * intra-node: library latency + a CPU-bound copy at the comm
    ///   library's throughput for this message size — co-resident
    ///   processes contend for the CPU, reproducing the MPICH-1.2.1
    ///   multiprocessing collapse;
    /// * inter-node: network latency + NIC occupancy at wire bandwidth —
    ///   concurrent transfers from one node contend for its NIC.
    fn send(&self, to: usize, tag: u32, msg: SimMsg) {
        if to != self.rank {
            if self.same_node(to) {
                let copy = if msg.bytes > 0.0 {
                    msg.bytes / self.shared.profile.intra_throughput(msg.bytes)
                } else {
                    0.0
                };
                self.ctx.hold(self.shared.profile.intra_latency);
                if copy > 0.0 {
                    self.ctx.compute(self.cpu(), copy);
                }
            } else {
                let node = self.shared.node_of_rank[self.rank];
                let nic = self.shared.nic_of_node[node].expect("sender node has a NIC");
                self.ctx.hold(self.shared.network.latency);
                if msg.bytes > 0.0 {
                    self.ctx.compute(nic, msg.bytes);
                }
            }
        }
        self.ctx.send(self.mailbox(self.rank, to), (tag, msg));
    }

    /// Receives and pays the receiver-side cost: an inter-node message
    /// must also cross *this* node's NIC and protocol stack, so the
    /// receiver occupies its own NIC for the message size (store-and-
    /// forward; concurrent inbound transfers to one node contend).
    fn recv(&self, from: usize, tag: u32) -> SimMsg {
        let (got_tag, msg): (u32, SimMsg) = self.ctx.recv(self.mailbox(from, self.rank));
        assert_eq!(
            got_tag, tag,
            "rank {}: expected tag {tag} from {from}, got {got_tag}",
            self.rank
        );
        if from != self.rank && !self.same_node(from) && msg.bytes > 0.0 {
            let node = self.shared.node_of_rank[self.rank];
            let nic = self.shared.nic_of_node[node].expect("receiver node has a NIC");
            self.ctx.compute(nic, msg.bytes);
        }
        msg
    }
}
