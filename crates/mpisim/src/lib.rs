//! # etm-mpisim — MPI-like message passing for the reproduction
//!
//! The paper runs HPL over MPICH. This crate supplies the two MPI
//! analogues the reproduction needs:
//!
//! * [`ThreadComm`] — every rank is an OS thread, messages carry real
//!   `Vec<f64>` payloads over crossbeam channels. The *numeric* HPL in
//!   `etm-hpl` runs on this backend and is validated by residual checks.
//! * [`SimComm`] — every rank is a process inside an `etm-sim`
//!   [`Simulation`](etm_sim::Simulation); messages carry only a byte
//!   count, and sending charges virtual time: intra-node transfers burn
//!   CPU through the [`CommLibProfile`](etm_cluster::CommLibProfile)
//!   (reproducing the MPICH-1.2.1 vs 1.2.2 gap of Figs. 1–2), inter-node
//!   transfers occupy the sender's NIC (a processor-sharing resource, so
//!   broadcast fan-out contends realistically).
//!
//! Collective operations ([`coll`]) are implemented once, generically,
//! over the [`Comm`] trait — ring and binomial broadcast, barrier — and
//! therefore behave identically on both backends.
//!
//! [`netpipe`] is the NetPIPE analogue: a ping-pong throughput sweep over
//! the simulated fabric, regenerating Fig. 2.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod coll;
pub mod netpipe;
mod simcomm;
mod subcomm;
mod threadcomm;

pub use simcomm::{SimComm, SimCommSeed, SimFabric, SimMsg};
pub use subcomm::SubComm;
pub use threadcomm::{build_thread_comms, ThreadComm, ThreadMsg};

/// Message-passing endpoint: what the generic collectives require.
///
/// `send` is asynchronous-buffered (never blocks on a matching receive);
/// `recv` blocks until a message from `from` with the expected `tag`
/// arrives. Point-to-point ordering per (sender, receiver) pair is
/// guaranteed; tags are checked, not searched — out-of-order tag usage
/// within a pair is a protocol bug and panics.
pub trait Comm {
    /// Message payload type (real data or byte counts).
    type Msg: Clone + Default + Send + 'static;

    /// This endpoint's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Sends `msg` to rank `to` under `tag`.
    fn send(&self, to: usize, tag: u32, msg: Self::Msg);

    /// Receives the next message from rank `from`, asserting it carries
    /// `tag`.
    fn recv(&self, from: usize, tag: u32) -> Self::Msg;
}
