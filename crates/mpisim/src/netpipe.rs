//! NetPIPE analogue: ping-pong throughput measurement on the simulated
//! fabric.
//!
//! The paper uses NetPIPE to expose the MPICH-1.2.1 vs 1.2.2 intra-node
//! throughput gap (Fig. 2): two processes on the *same* Athlon exchange
//! messages of increasing size. [`intra_node_sweep`] reproduces exactly
//! that setup on the discrete-event fabric and returns throughput per
//! block size.

use etm_cluster::{ClusterSpec, Configuration, Placement};
use etm_sim::Simulation;

use crate::{Comm, SimFabric, SimMsg};

/// One NetPIPE sample point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputSample {
    /// Message size in bytes.
    pub block_bytes: f64,
    /// Measured throughput in bits per second (NetPIPE reports Gbps).
    pub bits_per_sec: f64,
}

/// Ping-pongs `reps` round trips of `block_bytes` between two ranks and
/// returns the measured one-way throughput.
///
/// `placement` must contain at least two ranks; ranks 0 and 1 are used.
pub fn ping_pong(
    spec: &ClusterSpec,
    placement: &Placement,
    block_bytes: f64,
    reps: usize,
) -> ThroughputSample {
    assert!(placement.len() >= 2, "ping-pong needs two ranks");
    assert!(reps > 0);
    let mut sim = Simulation::new();
    let fabric = SimFabric::build(&mut sim, spec, placement);
    let seed0 = fabric.seed(0);
    let seed1 = fabric.seed(1);
    sim.spawn("pinger", move |ctx| {
        let comm = seed0.bind(ctx);
        for _ in 0..reps {
            comm.send(1, 1, SimMsg::of(block_bytes));
            let _ = comm.recv(1, 2);
        }
    });
    sim.spawn("ponger", move |ctx| {
        let comm = seed1.bind(ctx);
        for _ in 0..reps {
            let _ = comm.recv(0, 1);
            comm.send(0, 2, SimMsg::of(block_bytes));
        }
    });
    let total = sim.run().expect("ping-pong deadlocked");
    // 2·reps messages of block_bytes in `total` seconds.
    let bytes_per_sec = 2.0 * reps as f64 * block_bytes / total;
    ThroughputSample {
        block_bytes,
        bits_per_sec: bytes_per_sec * 8.0,
    }
}

/// Fig. 2 reproduction: throughput between two processes on one CPU of
/// the first PE kind, over a sweep of block sizes.
pub fn intra_node_sweep(spec: &ClusterSpec, block_sizes: &[f64]) -> Vec<ThroughputSample> {
    // Two processes on the single Athlon CPU, exactly the paper's setup.
    let cfg = Configuration::p1m1_p2m2(1, 2, 0, 0);
    let placement = Placement::new(spec, &cfg).expect("2 procs on 1 CPU");
    block_sizes
        .iter()
        .map(|&b| ping_pong(spec, &placement, b, 8))
        .collect()
}

/// Inter-node sweep between the first CPUs of two kinds (used by tests
/// and the network-calibration example).
pub fn inter_node_sweep(spec: &ClusterSpec, block_sizes: &[f64]) -> Vec<ThroughputSample> {
    let cfg = Configuration::p1m1_p2m2(1, 1, 1, 1);
    let placement = Placement::new(spec, &cfg).expect("1+1 placement");
    block_sizes
        .iter()
        .map(|&b| ping_pong(spec, &placement, b, 8))
        .collect()
}

/// The paper's Fig. 2 x-axis: 1 KiB to 128 KiB.
pub fn fig2_block_sizes() -> Vec<f64> {
    (0..=7).map(|i| 1024.0 * (1 << i) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etm_cluster::spec::paper_cluster;
    use etm_cluster::CommLibProfile;

    #[test]
    fn intra_node_throughput_saturates() {
        let spec = paper_cluster(CommLibProfile::mpich122());
        let samples = intra_node_sweep(&spec, &fig2_block_sizes());
        assert_eq!(samples.len(), 8);
        let first = samples.first().unwrap().bits_per_sec;
        let last = samples.last().unwrap().bits_per_sec;
        assert!(last > first, "throughput grows with block size");
        // Plateau near the profile's 275 MB/s = 2.2 Gb/s.
        assert!(last > 1.0e9, "large-block throughput {last} b/s");
    }

    #[test]
    fn mpich121_collapses_at_large_blocks() {
        let old = paper_cluster(CommLibProfile::mpich121());
        let new = paper_cluster(CommLibProfile::mpich122());
        let b = 128.0 * 1024.0;
        let t_old = ping_pong(
            &old,
            &Placement::new(&old, &Configuration::p1m1_p2m2(1, 2, 0, 0)).unwrap(),
            b,
            4,
        );
        let t_new = ping_pong(
            &new,
            &Placement::new(&new, &Configuration::p1m1_p2m2(1, 2, 0, 0)).unwrap(),
            b,
            4,
        );
        assert!(
            t_new.bits_per_sec > 5.0 * t_old.bits_per_sec,
            "Fig 2 gap: {} vs {}",
            t_new.bits_per_sec,
            t_old.bits_per_sec
        );
    }

    #[test]
    fn inter_node_bounded_by_wire_bandwidth() {
        let spec = paper_cluster(CommLibProfile::mpich122());
        let samples = inter_node_sweep(&spec, &[64.0 * 1024.0, 1024.0 * 1024.0]);
        for s in samples {
            assert!(
                s.bits_per_sec <= spec.network.bandwidth * 8.0 * 1.01,
                "{} exceeds the wire",
                s.bits_per_sec
            );
        }
    }

    #[test]
    fn intra_beats_inter_for_mpich122() {
        // Shared memory is much faster than 100base-TX.
        let spec = paper_cluster(CommLibProfile::mpich122());
        let b = 64.0 * 1024.0;
        let intra = intra_node_sweep(&spec, &[b])[0].bits_per_sec;
        let inter = inter_node_sweep(&spec, &[b])[0].bits_per_sec;
        assert!(intra > 3.0 * inter, "intra {intra} vs inter {inter}");
    }
}
