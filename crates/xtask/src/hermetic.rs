//! Pass 1: hermeticity lint over every `Cargo.toml` in the workspace.
//!
//! The invariant: the workspace builds with an empty cargo registry
//! cache and no network. Concretely, every entry in a dependency table
//! must be either a `path` dependency or `workspace = true` (inheriting
//! a `[workspace.dependencies]` entry, which must itself be a path
//! dependency). `git`, `registry`, and bare-version dependencies are
//! violations, as are `[patch]`/`[replace]` tables.

use std::fs;
use std::path::Path;

/// Runs the pass. Returns one message per violation.
pub fn run(root: &Path) -> Result<Vec<String>, String> {
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("cannot list {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/ entry: {e}"))?;
        let manifest = entry.path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }

    let mut violations = Vec::new();
    for manifest in &manifests {
        let text = fs::read_to_string(manifest)
            .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
        let rel = manifest.strip_prefix(root).unwrap_or(manifest).display();
        check_manifest(&format!("{rel}"), &text, &mut violations);
    }
    Ok(violations)
}

/// True for section headers whose key/value entries are dependency
/// specifications: `[dependencies]`, `[dev-dependencies]`,
/// `[build-dependencies]`, `[workspace.dependencies]`, and the
/// `[target.'cfg'.dependencies]` family.
fn is_dep_table(section: &str) -> bool {
    section == "dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with("-dependencies")
}

/// A `[dependencies.foo]` style sub-table: the dependency spec is spread
/// over the following lines rather than an inline table.
fn dep_subtable(section: &str) -> Option<&str> {
    for table in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(name) = section.strip_prefix(table) {
            return Some(name);
        }
    }
    section
        .strip_prefix("workspace.dependencies.")
        .or_else(|| section.find(".dependencies.").map(|i| &section[i + 14..]))
}

fn check_manifest(file: &str, text: &str, out: &mut Vec<String>) {
    let mut section = String::new();
    // For `[dependencies.foo]` sub-tables: the dependency name and
    // whether a `path`/`workspace` key has been seen yet.
    let mut open_subtable: Option<(String, bool)> = None;

    let flush = |sub: &mut Option<(String, bool)>, out: &mut Vec<String>| {
        if let Some((name, hermetic)) = sub.take() {
            if !hermetic {
                out.push(format!(
                    "{file}: dependency `{name}` has no `path` or `workspace = true` key"
                ));
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut open_subtable, out);
            section = line.trim_matches(['[', ']']).trim_matches('"').to_string();
            if section == "patch" || section.starts_with("patch.") || section == "replace" {
                out.push(format!(
                    "{file}:{lineno}: `[{section}]` tables can redirect to non-path sources"
                ));
            }
            if let Some(name) = dep_subtable(&section) {
                open_subtable = Some((name.to_string(), false));
            }
            continue;
        }
        if let Some((name, hermetic)) = open_subtable.as_mut() {
            let key = line.split('=').next().unwrap_or("").trim();
            match key {
                "path" => *hermetic = true,
                "workspace" if line.contains("true") => *hermetic = true,
                "git" | "registry" | "registry-index" => out.push(format!(
                    "{file}:{lineno}: dependency `{name}` uses non-path source key `{key}`"
                )),
                _ => {}
            }
            continue;
        }
        if !is_dep_table(&section) {
            continue;
        }
        // An inline dependency entry: `name = <spec>` or the dotted
        // shorthand `name.workspace = true` / `name.path = "..."`.
        let Some((lhs, rhs)) = line.split_once('=') else {
            continue;
        };
        let (lhs, rhs) = (lhs.trim(), rhs.trim());
        let (name, dotted_key) = match lhs.split_once('.') {
            Some((n, k)) => (n.trim_matches('"'), Some(k)),
            None => (lhs.trim_matches('"'), None),
        };
        let hermetic = match dotted_key {
            Some("workspace") => rhs.starts_with("true"),
            Some("path") => true,
            Some(_) => false,
            None => rhs.contains("path") || (rhs.contains("workspace") && rhs.contains("true")),
        };
        let non_path_source = rhs.contains("git") || rhs.contains("registry");
        if non_path_source {
            out.push(format!(
                "{file}:{lineno}: dependency `{name}` names a git/registry source"
            ));
        } else if !hermetic {
            out.push(format!(
                "{file}:{lineno}: dependency `{name}` is not a path dependency \
                 (spec: `{rhs}`) — the workspace must build offline"
            ));
        }
    }
    flush(&mut open_subtable, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(text: &str) -> Vec<String> {
        let mut out = Vec::new();
        check_manifest("test/Cargo.toml", text, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let v = violations(
            "[dependencies]\n\
             a = { path = \"../a\" }\n\
             b.workspace = true\n\
             c = { workspace = true }\n\
             [dev-dependencies]\n\
             d = { path = \"../d\", features = [\"x\"] }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn registry_version_dep_fails() {
        let v = violations("[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("serde"));
    }

    #[test]
    fn git_dep_fails() {
        let v = violations("[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn dep_subtable_without_path_fails() {
        let v = violations("[dependencies.foo]\nversion = \"1\"\n\n[features]\nx = []\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("foo"));
    }

    #[test]
    fn dep_subtable_with_path_passes() {
        let v = violations("[dependencies.foo]\npath = \"../foo\"\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn patch_table_fails() {
        let v = violations("[patch.crates-io]\nfoo = { path = \"f\" }\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn non_dep_tables_ignored() {
        let v = violations(
            "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\
             [features]\nproptest = []\n\
             [[bench]]\nname = \"b\"\nharness = false\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
