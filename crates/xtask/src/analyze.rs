//! Bridge to the `etm-analyze` static analyzer.
//!
//! Two entry points:
//!
//! * [`run_lint`] — the `check lint` pass: only the P-series policy
//!   rules (the re-hosted successors of the old line-regex lint).
//! * [`run_full`] — the `cargo xtask analyze` gate: every pass (C001–
//!   C004 concurrency + P001–P005 policy) with human output, optional
//!   JSON report, and the `analyze.allow` baseline contract (stale
//!   entries fail).

use std::path::Path;

use etm_analyze::{analyze_root, policy_passes, run_passes, Baseline, Report, Workspace};

/// The `check lint` pass: policy rules only, one message per violation.
///
/// # Errors
/// Unreadable sources or a malformed `analyze.allow`.
pub fn run_lint(root: &Path) -> Result<Vec<String>, String> {
    let ws = Workspace::load(root)?;
    let baseline = Baseline::load(root)?;
    let report = run_passes(&ws, &baseline, &policy_passes());
    Ok(report_messages(&report, /*policy_only=*/ true))
}

/// The full analyzer gate. Prints the human report, optionally writes
/// the JSON report, and returns whether the gate is clean.
///
/// # Errors
/// Unreadable sources, a malformed `analyze.allow`, or an unwritable
/// JSON path.
pub fn run_full(root: &Path, json: Option<&Path>) -> Result<bool, String> {
    let report = analyze_root(root)?;
    print!("{}", report.render_human());
    if let Some(path) = json {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        std::fs::write(path, report.render_json(&etm_analyze::rules()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("json report -> {}", path.display());
    }
    Ok(report.is_clean())
}

/// Flattens a report into `check`-style violation strings. With
/// `policy_only`, stale-baseline complaints about C-rules are kept out
/// of the lint pass (the full gate owns them).
fn report_messages(report: &Report, policy_only: bool) -> Vec<String> {
    let mut out: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    for s in &report.stale {
        // The lint pass runs only P-rules, so baseline entries for the
        // concurrency rules are legitimately unused here; the full
        // `analyze` gate owns their staleness.
        if policy_only && !s.contains("`P") {
            continue;
        }
        out.push(format!("stale analyze.allow: {s}"));
    }
    out
}
