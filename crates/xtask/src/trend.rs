//! `cargo xtask bench-trend` — median-per-commit trend tables over the
//! per-commit baseline store.
//!
//! `bench-diff --latest` appends one `"<sha> <basename>"` line to
//! `results/bench/index.log` for every baseline it records. This
//! subcommand replays that history: for each suite (optionally filtered
//! by name on the command line) it loads every stored
//! `results/bench/<sha>/BENCH_<suite>.json`, lines the medians up per
//! commit — oldest left, newest right — and renders one markdown table
//! per suite, with a trailing delta column comparing the two newest
//! columns. The rendering goes to stdout and to
//! `results/bench/TREND.md`.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::benchdiff::{load, Entry};

/// Workspace-relative directory of the per-commit baseline store (same
/// store `bench-diff --latest` writes).
const BENCH_STORE: &str = "results/bench";

/// The rendered trend file, inside the store.
const TREND_MD: &str = "TREND.md";

/// One suite's history: commit columns in index order and, per
/// benchmark, the median at each commit (None where the stored baseline
/// is missing or lacks the row).
struct SuiteTrend {
    suite: String,
    shas: Vec<String>,
    /// Benchmark name → one entry per sha column.
    medians: BTreeMap<String, Vec<Option<f64>>>,
}

/// Parses the index into `basename → shas in append order` (first
/// occurrence wins on re-recorded commits; the stored file is
/// overwritten in place, so one column per sha is the truth).
fn columns_of_index(index: &str) -> Vec<(String, Vec<String>)> {
    let mut order: Vec<String> = Vec::new();
    let mut by_base: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for line in index.lines() {
        let Some((sha, base)) = line.split_once(' ') else {
            continue;
        };
        let shas = by_base.entry(base.to_string()).or_insert_with(|| {
            order.push(base.to_string());
            Vec::new()
        });
        if !shas.iter().any(|s| s == sha) {
            shas.push(sha.to_string());
        }
    }
    order
        .into_iter()
        .map(|base| {
            let shas = by_base.remove(&base).unwrap_or_default();
            (base, shas)
        })
        .collect()
}

/// Loads one suite's stored baselines into a trend grid.
fn collect(store: &Path, basename: &str, shas: &[String]) -> SuiteTrend {
    let mut suite = basename
        .strip_prefix("BENCH_")
        .and_then(|s| s.strip_suffix(".json"))
        .unwrap_or(basename)
        .to_string();
    let mut medians: BTreeMap<String, Vec<Option<f64>>> = BTreeMap::new();
    for (col, sha) in shas.iter().enumerate() {
        let path = store.join(sha).join(basename);
        let entries: Vec<Entry> = match load(&path.display().to_string()) {
            Ok((name, entries)) => {
                suite = name;
                entries
            }
            Err(_) => Vec::new(), // pruned or corrupt: renders as a gap
        };
        for e in entries {
            let row = medians.entry(e.name).or_insert_with(|| vec![None; col]);
            row.resize(col, None); // pad gaps where earlier commits lacked the row
            row.push(Some(e.median_ns));
        }
        for row in medians.values_mut() {
            row.resize(col + 1, None);
        }
    }
    SuiteTrend {
        suite,
        shas: shas.to_vec(),
        medians,
    }
}

/// Renders nanoseconds with an adaptive unit (matches the bench
/// harness's table formatting).
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The trailing delta cell: newest column vs the newest earlier column
/// that has a value.
fn delta_cell(row: &[Option<f64>]) -> String {
    let mut it = row.iter().rev().flatten();
    match (it.next(), it.next()) {
        (Some(new), Some(old)) if *old > 0.0 => {
            format!("{:+.1}%", (new - old) / old * 100.0)
        }
        _ => "–".to_string(),
    }
}

fn render_suite(t: &SuiteTrend) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {}\n\n", t.suite));
    out.push_str("| benchmark |");
    for sha in &t.shas {
        out.push_str(&format!(" `{sha}` |"));
    }
    out.push_str(" Δ |\n|---|");
    for _ in &t.shas {
        out.push_str("---:|");
    }
    out.push_str("---:|\n");
    for (name, row) in &t.medians {
        out.push_str(&format!("| {name} |"));
        for cell in row {
            match cell {
                Some(ns) => out.push_str(&format!(" {} |", fmt_ns(*ns))),
                None => out.push_str(" – |"),
            }
        }
        out.push_str(&format!(" {} |\n", delta_cell(row)));
    }
    out.push('\n');
    out
}

/// Renders the trend markdown for every suite in the index (or only the
/// named ones).
///
/// # Errors
/// No store, an unreadable index, or a suite filter matching nothing.
pub fn render(root: &Path, suites: &[String]) -> Result<String, String> {
    let store = root.join(BENCH_STORE);
    let index_path = store.join("index.log");
    let index = fs::read_to_string(&index_path)
        .map_err(|e| format!("no baseline store at {}: {e}", index_path.display()))?;
    let mut out = String::from(
        "# Bench medians per commit\n\n\
         Generated by `cargo xtask bench-trend` from the per-commit\n\
         baseline store `results/bench/` (append-only `index.log`,\n\
         written by `cargo xtask bench-diff --latest`). Columns are\n\
         commits, oldest left; Δ compares the two newest columns.\n\n",
    );
    let mut rendered = 0usize;
    for (basename, shas) in columns_of_index(&index) {
        let trend = collect(&store, &basename, &shas);
        if !suites.is_empty() && !suites.contains(&trend.suite) {
            continue;
        }
        out.push_str(&render_suite(&trend));
        rendered += 1;
    }
    if rendered == 0 {
        return Err(if suites.is_empty() {
            "the baseline store index is empty; run a bench with ETM_BENCH_OUT \
             and `cargo xtask bench-diff --latest` first"
                .to_string()
        } else {
            format!("no stored suite matches {suites:?}")
        });
    }
    Ok(out)
}

/// The `bench-trend` entry point: renders, prints, and stores
/// `results/bench/TREND.md`.
///
/// # Errors
/// Everything [`render`] errors on, plus an unwritable store.
pub fn run(root: &Path, suites: &[String]) -> Result<(), String> {
    let text = render(root, suites)?;
    print!("{text}");
    let path = root.join(BENCH_STORE).join(TREND_MD);
    fs::write(&path, &text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("trend -> {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(tag: &str, files: &[(&str, &str, &str)]) -> std::path::PathBuf {
        // (sha, basename, json text) triples plus a matching index.
        let root = std::env::temp_dir().join(format!("etm-trend-{tag}-{}", std::process::id()));
        let store = root.join(BENCH_STORE);
        let _ = fs::remove_dir_all(&root);
        let mut index = String::new();
        for (sha, base, text) in files {
            let dir = store.join(sha);
            fs::create_dir_all(&dir).expect("tempdir is creatable");
            fs::write(dir.join(base), text).expect("tempdir is writable");
            index.push_str(&format!("{sha} {base}\n"));
        }
        fs::create_dir_all(&store).expect("tempdir is creatable");
        fs::write(store.join("index.log"), index).expect("tempdir is writable");
        root
    }

    fn baseline(suite: &str, rows: &[(&str, f64)]) -> String {
        let rows: Vec<String> = rows
            .iter()
            .map(|(n, m)| {
                format!(
                    "{{\"name\": \"{n}\", \"iters\": 1, \"samples\": 2, \"min_ns\": {m}, \
                     \"median_ns\": {m}, \"mean_ns\": {m}, \"max_ns\": {m}}}"
                )
            })
            .collect();
        format!(
            "{{\"suite\": \"{suite}\", \"rows\": [{}]}}",
            rows.join(", ")
        )
    }

    #[test]
    fn renders_medians_per_commit_with_delta() {
        let root = store_with(
            "basic",
            &[
                ("aaa1111", "BENCH_s.json", &baseline("s", &[("x", 100.0)])),
                ("bbb2222", "BENCH_s.json", &baseline("s", &[("x", 150.0)])),
            ],
        );
        let md = render(&root, &[]).expect("renders");
        assert!(md.contains("## s"), "{md}");
        assert!(md.contains("`aaa1111`") && md.contains("`bbb2222`"), "{md}");
        assert!(md.contains("| x | 100.0 ns | 150.0 ns | +50.0% |"), "{md}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gaps_render_as_dashes_and_suite_filter_applies() {
        let root = store_with(
            "gaps",
            &[
                (
                    "c1",
                    "BENCH_a.json",
                    &baseline("a", &[("only_new", 0.0); 0]),
                ),
                (
                    "c2",
                    "BENCH_a.json",
                    &baseline("a", &[("only_new", 2000.0)]),
                ),
                ("c1", "BENCH_b.json", &baseline("b", &[("other", 5.0)])),
            ],
        );
        let md = render(&root, &["a".to_string()]).expect("renders");
        assert!(md.contains("## a"), "{md}");
        assert!(!md.contains("## b"), "filter must drop suite b: {md}");
        // only_new has no value at c1: a gap, and no computable delta.
        assert!(md.contains("| only_new | – | 2.00 us | – |"), "{md}");
        assert!(render(&root, &["nope".to_string()]).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn single_commit_suite_still_renders_a_row() {
        // Regression pin: a suite recorded under exactly one commit —
        // the first run of any new bench, e.g. a fresh `shards`
        // baseline — must still get its table and rows, with the delta
        // column showing "–" (no earlier column to compare against)
        // rather than being dropped from the trend entirely.
        let root = store_with(
            "single",
            &[
                (
                    "aaa1111",
                    "BENCH_old.json",
                    &baseline("old", &[("steady", 10.0)]),
                ),
                (
                    "bbb2222",
                    "BENCH_old.json",
                    &baseline("old", &[("steady", 10.0)]),
                ),
                (
                    "bbb2222",
                    "BENCH_shards.json",
                    &baseline("shards", &[("shards/campaign_width_4", 1.5e7)]),
                ),
            ],
        );
        let md = render(&root, &[]).expect("renders");
        assert!(md.contains("## shards"), "{md}");
        assert!(
            md.contains("| shards/campaign_width_4 | 15.00 ms | – |"),
            "single-commit suite must render its medians with a dash delta: {md}"
        );
        // And the suite filter can select it on its own.
        let only = render(&root, &["shards".to_string()]).expect("renders");
        assert!(
            only.contains("## shards") && !only.contains("## old"),
            "{only}"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_store_errors() {
        let root = store_with("empty", &[]);
        assert!(render(&root, &[]).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn index_dedupes_rerecorded_commits() {
        let idx = "s1 BENCH_a.json\ns1 BENCH_a.json\ns2 BENCH_a.json\n";
        let cols = columns_of_index(idx);
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].1, vec!["s1".to_string(), "s2".to_string()]);
    }
}
