//! `cargo xtask bench-diff <old> <new>` — the regression gate over the
//! std-harness bench baselines.
//!
//! Both inputs are `BENCH_<suite>.json` files written by `etm-bench`
//! runs with `ETM_BENCH_OUT` set. The diff compares per-benchmark
//! **median** ns/iter (the most noise-robust of the reported stats) and
//! fails when any benchmark regresses by more than the threshold
//! (default 25%, override with `--threshold <percent>`). Benchmarks
//! present only in the new baseline are listed as informational;
//! benchmarks that *disappeared* fail the gate — a silently dropped
//! timing is how perf coverage rots.
//!
//! `cargo xtask bench-diff --latest <new>` drives the **per-commit
//! baseline store** instead of an explicit pair: the fresh baseline is
//! diffed against the most recently stored one with the same file name,
//! then recorded under `results/bench/<short-sha>/` (sha of `git
//! rev-parse --short HEAD`, or `nosha` outside git) and appended to the
//! append-only `results/bench/index.log`. The first run of a new suite
//! records without diffing. The record is kept even when the diff
//! fails, so the history shows what each commit actually measured.

use std::fs;
use std::path::Path;

use etm_support::json::{parse, Json};

/// Default allowed median regression, in percent. Generous because the
/// suites time whole simulated campaigns on shared CI machines; a real
/// algorithmic regression shows up far above this.
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// One benchmark's stats pulled out of a baseline document.
pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) median_ns: f64,
}

pub(crate) fn load(path: &str) -> Result<(String, Vec<Entry>), String> {
    let text = fs::read_to_string(Path::new(path))
        .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let suite: String = doc.field("suite").map_err(|e| format!("{path}: {e}"))?;
    let rows: Vec<Json> = doc.field("rows").map_err(|e| format!("{path}: {e}"))?;
    let mut entries = Vec::new();
    for row in &rows {
        entries.push(Entry {
            name: row.field("name").map_err(|e| format!("{path}: {e}"))?,
            median_ns: row.field("median_ns").map_err(|e| format!("{path}: {e}"))?,
        });
    }
    Ok((suite, entries))
}

/// Runs the diff. Returns one message per regression (empty = pass).
pub fn run(
    old_path: &str,
    new_path: &str,
    threshold_pct: Option<f64>,
) -> Result<Vec<String>, String> {
    let threshold = threshold_pct.unwrap_or(DEFAULT_THRESHOLD_PCT);
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err(format!(
            "threshold must be a positive percentage, got {threshold}"
        ));
    }
    let (old_suite, old) = load(old_path)?;
    let (new_suite, new) = load(new_path)?;
    if old_suite != new_suite {
        return Err(format!(
            "baselines are from different suites: '{old_suite}' vs '{new_suite}'"
        ));
    }

    let mut failures = Vec::new();
    for o in &old {
        match new.iter().find(|n| n.name == o.name) {
            None => failures.push(format!(
                "{}: benchmark disappeared from the new baseline",
                o.name
            )),
            Some(n) if o.median_ns > 0.0 => {
                let delta_pct = (n.median_ns - o.median_ns) / o.median_ns * 100.0;
                let verdict = if delta_pct > threshold {
                    failures.push(format!(
                        "{}: median regressed {:+.1}% ({:.0} ns -> {:.0} ns, threshold {:.0}%)",
                        o.name, delta_pct, o.median_ns, n.median_ns, threshold
                    ));
                    "REGRESSED"
                } else if delta_pct < -threshold {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "    {:<50} {:>12.0} -> {:>12.0} ns  {:+7.1}%  {}",
                    o.name, o.median_ns, n.median_ns, delta_pct, verdict
                );
            }
            Some(_) => println!("    {:<50} old median is 0 ns; skipped", o.name),
        }
    }
    for n in &new {
        if !old.iter().any(|o| o.name == n.name) {
            println!("    {:<50} new benchmark ({:.0} ns)", n.name, n.median_ns);
        }
    }
    Ok(failures)
}

/// Workspace-relative directory of the per-commit baseline store.
const BENCH_STORE: &str = "results/bench";

/// The append-only index: one `"<sha> <basename>"` line per stored
/// baseline, newest last.
const INDEX_LOG: &str = "index.log";

/// The current commit's short hash, or `nosha` when git is unavailable
/// (tarball builds still get a working store).
fn short_sha(root: &Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "nosha".to_string())
}

/// The sha of the most recently stored baseline named `basename`, from
/// the index's newest matching line.
fn latest_stored(index: &str, basename: &str) -> Option<String> {
    index.lines().rev().find_map(|line| {
        let (sha, base) = line.split_once(' ')?;
        (base == basename).then(|| sha.to_string())
    })
}

/// Copies `new_path` into the store under `sha` and appends the index
/// line (skipped when it would duplicate the newest line, so re-runs of
/// one commit do not pad the log).
fn store_baseline(store: &Path, sha: &str, basename: &str, new_path: &str) -> Result<(), String> {
    let dir = store.join(sha);
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let dest = dir.join(basename);
    fs::copy(Path::new(new_path), &dest)
        .map_err(|e| format!("cannot store {} -> {}: {e}", new_path, dest.display()))?;
    let index_path = store.join(INDEX_LOG);
    let line = format!("{sha} {basename}");
    let existing = fs::read_to_string(&index_path).unwrap_or_default();
    if existing.lines().next_back() != Some(line.as_str()) {
        let mut out = existing;
        out.push_str(&line);
        out.push('\n');
        fs::write(&index_path, out)
            .map_err(|e| format!("cannot append {}: {e}", index_path.display()))?;
    }
    println!("    stored {}", dest.display());
    Ok(())
}

/// The `--latest` mode: diff `new_path` against the most recently
/// stored baseline of the same name (if any), then record it for the
/// current commit. Returns the diff's regressions.
pub fn run_latest(
    root: &Path,
    new_path: &str,
    threshold_pct: Option<f64>,
) -> Result<Vec<String>, String> {
    let store = root.join(BENCH_STORE);
    let basename = Path::new(new_path)
        .file_name()
        .ok_or_else(|| format!("{new_path} has no file name"))?
        .to_string_lossy()
        .to_string();
    let index = fs::read_to_string(store.join(INDEX_LOG)).unwrap_or_default();
    let failures = match latest_stored(&index, &basename) {
        Some(prev_sha) => {
            let old = store.join(&prev_sha).join(&basename);
            println!("    baseline: {} (commit {prev_sha})", old.display());
            run(&old.display().to_string(), new_path, threshold_pct)?
        }
        None => {
            println!("    no stored baseline named {basename}; recording only");
            Vec::new()
        }
    };
    store_baseline(&store, &short_sha(root), &basename, new_path)?;
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_baseline(dir: &Path, file: &str, suite: &str, rows: &[(&str, f64)]) -> String {
        let rows_json: Vec<String> = rows
            .iter()
            .map(|(name, median)| {
                format!(
                    "{{\"name\": \"{name}\", \"iters\": 1, \"samples\": 2, \
                     \"min_ns\": {median}, \"median_ns\": {median}, \
                     \"mean_ns\": {median}, \"max_ns\": {median}}}"
                )
            })
            .collect();
        let text = format!(
            "{{\"suite\": \"{suite}\", \"rows\": [{}]}}",
            rows_json.join(", ")
        );
        let path = dir.join(file);
        fs::write(&path, text).expect("tempdir is writable");
        path.display().to_string()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("etm-benchdiff-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("tempdir is creatable");
        dir
    }

    #[test]
    fn within_threshold_passes() {
        let dir = tempdir("pass");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0), ("b", 200.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 110.0), ("b", 150.0)]);
        let failures = run(&old, &new, None).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let dir = tempdir("fail");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 180.0)]);
        let failures = run(&old, &new, None).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
        // A custom threshold wide enough lets the same delta through.
        assert!(run(&old, &new, Some(90.0)).unwrap().is_empty());
    }

    #[test]
    fn disappeared_benchmark_fails() {
        let dir = tempdir("gone");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0), ("b", 50.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 100.0), ("c", 10.0)]);
        let failures = run(&old, &new, None).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("disappeared"), "{failures:?}");
    }

    #[test]
    fn mismatched_suites_error() {
        let dir = tempdir("suites");
        let old = write_baseline(&dir, "old.json", "alpha", &[("a", 1.0)]);
        let new = write_baseline(&dir, "new.json", "beta", &[("a", 1.0)]);
        assert!(run(&old, &new, None).is_err());
    }

    #[test]
    fn latest_stored_returns_newest_matching_line() {
        let index = "abc BENCH_a.json\n\
                     def BENCH_b.json\n\
                     ghi BENCH_a.json\n";
        assert_eq!(latest_stored(index, "BENCH_a.json").as_deref(), Some("ghi"));
        assert_eq!(latest_stored(index, "BENCH_b.json").as_deref(), Some("def"));
        assert!(latest_stored(index, "BENCH_c.json").is_none());
        assert!(latest_stored("", "BENCH_a.json").is_none());
    }

    #[test]
    fn latest_mode_records_then_gates() {
        // A tempdir root outside any git repo: sha falls back to nosha.
        let root = tempdir("latest");
        let _ = fs::remove_dir_all(root.join(BENCH_STORE));
        let fresh = write_baseline(&root, "BENCH_s.json", "s", &[("a", 100.0)]);
        // First run: nothing stored yet, records only.
        let failures = run_latest(&root, &fresh, None).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        let index = fs::read_to_string(root.join(BENCH_STORE).join(INDEX_LOG)).unwrap();
        assert!(index.contains("BENCH_s.json"), "{index}");
        assert!(root
            .join(BENCH_STORE)
            .join("nosha")
            .join("BENCH_s.json")
            .is_file());
        // Second run, same numbers: diff against the store passes, and
        // the duplicate index line is skipped.
        let failures = run_latest(&root, &fresh, None).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        let index = fs::read_to_string(root.join(BENCH_STORE).join(INDEX_LOG)).unwrap();
        assert_eq!(index.lines().count(), 1, "{index}");
        // Third run regresses: the stored baseline catches it, but the
        // regressed run is still recorded for the history.
        let slow = write_baseline(&root, "BENCH_s.json", "s", &[("a", 250.0)]);
        let failures = run_latest(&root, &slow, None).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("regressed"), "{failures:?}");
        let stored =
            fs::read_to_string(root.join(BENCH_STORE).join("nosha").join("BENCH_s.json")).unwrap();
        assert!(stored.contains("250"), "{stored}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bad_threshold_rejected() {
        let dir = tempdir("thresh");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 1.0)]);
        assert!(run(&old, &old, Some(0.0)).is_err());
        assert!(run(&old, &old, Some(-5.0)).is_err());
    }
}
