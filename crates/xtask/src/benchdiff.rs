//! `cargo xtask bench-diff <old> <new>` — the regression gate over the
//! std-harness bench baselines.
//!
//! Both inputs are `BENCH_<suite>.json` files written by `etm-bench`
//! runs with `ETM_BENCH_OUT` set. The diff compares per-benchmark
//! **median** ns/iter (the most noise-robust of the reported stats) and
//! fails when any benchmark regresses by more than the threshold
//! (default 25%, override with `--threshold <percent>`). Benchmarks
//! present only in the new baseline are listed as informational;
//! benchmarks that *disappeared* fail the gate — a silently dropped
//! timing is how perf coverage rots.

use std::fs;
use std::path::Path;

use etm_support::json::{parse, Json};

/// Default allowed median regression, in percent. Generous because the
/// suites time whole simulated campaigns on shared CI machines; a real
/// algorithmic regression shows up far above this.
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// One benchmark's stats pulled out of a baseline document.
struct Entry {
    name: String,
    median_ns: f64,
}

fn load(path: &str) -> Result<(String, Vec<Entry>), String> {
    let text = fs::read_to_string(Path::new(path))
        .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let suite: String = doc.field("suite").map_err(|e| format!("{path}: {e}"))?;
    let rows: Vec<Json> = doc.field("rows").map_err(|e| format!("{path}: {e}"))?;
    let mut entries = Vec::new();
    for row in &rows {
        entries.push(Entry {
            name: row.field("name").map_err(|e| format!("{path}: {e}"))?,
            median_ns: row.field("median_ns").map_err(|e| format!("{path}: {e}"))?,
        });
    }
    Ok((suite, entries))
}

/// Runs the diff. Returns one message per regression (empty = pass).
pub fn run(
    old_path: &str,
    new_path: &str,
    threshold_pct: Option<f64>,
) -> Result<Vec<String>, String> {
    let threshold = threshold_pct.unwrap_or(DEFAULT_THRESHOLD_PCT);
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err(format!(
            "threshold must be a positive percentage, got {threshold}"
        ));
    }
    let (old_suite, old) = load(old_path)?;
    let (new_suite, new) = load(new_path)?;
    if old_suite != new_suite {
        return Err(format!(
            "baselines are from different suites: '{old_suite}' vs '{new_suite}'"
        ));
    }

    let mut failures = Vec::new();
    for o in &old {
        match new.iter().find(|n| n.name == o.name) {
            None => failures.push(format!(
                "{}: benchmark disappeared from the new baseline",
                o.name
            )),
            Some(n) if o.median_ns > 0.0 => {
                let delta_pct = (n.median_ns - o.median_ns) / o.median_ns * 100.0;
                let verdict = if delta_pct > threshold {
                    failures.push(format!(
                        "{}: median regressed {:+.1}% ({:.0} ns -> {:.0} ns, threshold {:.0}%)",
                        o.name, delta_pct, o.median_ns, n.median_ns, threshold
                    ));
                    "REGRESSED"
                } else if delta_pct < -threshold {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "    {:<50} {:>12.0} -> {:>12.0} ns  {:+7.1}%  {}",
                    o.name, o.median_ns, n.median_ns, delta_pct, verdict
                );
            }
            Some(_) => println!("    {:<50} old median is 0 ns; skipped", o.name),
        }
    }
    for n in &new {
        if !old.iter().any(|o| o.name == n.name) {
            println!("    {:<50} new benchmark ({:.0} ns)", n.name, n.median_ns);
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_baseline(dir: &Path, file: &str, suite: &str, rows: &[(&str, f64)]) -> String {
        let rows_json: Vec<String> = rows
            .iter()
            .map(|(name, median)| {
                format!(
                    "{{\"name\": \"{name}\", \"iters\": 1, \"samples\": 2, \
                     \"min_ns\": {median}, \"median_ns\": {median}, \
                     \"mean_ns\": {median}, \"max_ns\": {median}}}"
                )
            })
            .collect();
        let text = format!(
            "{{\"suite\": \"{suite}\", \"rows\": [{}]}}",
            rows_json.join(", ")
        );
        let path = dir.join(file);
        fs::write(&path, text).expect("tempdir is writable");
        path.display().to_string()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("etm-benchdiff-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("tempdir is creatable");
        dir
    }

    #[test]
    fn within_threshold_passes() {
        let dir = tempdir("pass");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0), ("b", 200.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 110.0), ("b", 150.0)]);
        let failures = run(&old, &new, None).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let dir = tempdir("fail");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 180.0)]);
        let failures = run(&old, &new, None).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
        // A custom threshold wide enough lets the same delta through.
        assert!(run(&old, &new, Some(90.0)).unwrap().is_empty());
    }

    #[test]
    fn disappeared_benchmark_fails() {
        let dir = tempdir("gone");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0), ("b", 50.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 100.0), ("c", 10.0)]);
        let failures = run(&old, &new, None).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("disappeared"), "{failures:?}");
    }

    #[test]
    fn mismatched_suites_error() {
        let dir = tempdir("suites");
        let old = write_baseline(&dir, "old.json", "alpha", &[("a", 1.0)]);
        let new = write_baseline(&dir, "new.json", "beta", &[("a", 1.0)]);
        assert!(run(&old, &new, None).is_err());
    }

    #[test]
    fn bad_threshold_rejected() {
        let dir = tempdir("thresh");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 1.0)]);
        assert!(run(&old, &old, Some(0.0)).is_err());
        assert!(run(&old, &old, Some(-5.0)).is_err());
    }
}
