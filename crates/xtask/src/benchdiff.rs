//! `cargo xtask bench-diff <old> <new>` — the regression gate over the
//! std-harness bench baselines.
//!
//! Both inputs are `BENCH_<suite>.json` files written by `etm-bench`
//! runs with `ETM_BENCH_OUT` set. The diff compares per-benchmark
//! **median** ns/iter (the most noise-robust of the reported stats) and
//! fails when any benchmark regresses by more than the threshold
//! (default 25%, override with `--threshold <percent>` globally or
//! `--threshold <suite>=<percent>` for one suite — the flag repeats,
//! and the per-suite value wins over the global one). Benchmarks
//! present only in the new baseline are listed as informational;
//! benchmarks that *disappeared* fail the gate — a silently dropped
//! timing is how perf coverage rots.
//!
//! `cargo xtask bench-diff --latest <new>` drives the **per-commit
//! baseline store** instead of an explicit pair: the fresh baseline is
//! diffed against the most recently stored one with the same file name,
//! then recorded under `results/bench/<short-sha>/` (sha of `git
//! rev-parse --short HEAD`, or `nosha` outside git) and appended to the
//! append-only `results/bench/index.log`. The first run of a new suite
//! records without diffing. The record is kept even when the diff
//! fails, so the history shows what each commit actually measured.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use etm_support::json::{parse, Json};

/// Default allowed median regression, in percent. Generous because the
/// suites time whole simulated campaigns on shared CI machines; a real
/// algorithmic regression shows up far above this.
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// The resolved `--threshold` flags: an optional global override plus
/// per-suite overrides keyed by the suite name the baseline carries.
/// Resolution order is per-suite, then global, then
/// [`DEFAULT_THRESHOLD_PCT`] — so noisy suites (the thread-pool
/// throughput timings, say) can run with a wide gate without loosening
/// the single-threaded ones.
#[derive(Default)]
pub struct Thresholds {
    global: Option<f64>,
    per_suite: BTreeMap<String, f64>,
}

impl Thresholds {
    /// A global-only threshold, for callers that never pass per-suite
    /// flags (and for the pre-existing test surface).
    #[cfg(test)]
    pub fn global(pct: f64) -> Self {
        Self {
            global: Some(pct),
            per_suite: BTreeMap::new(),
        }
    }

    /// Folds one `--threshold` operand in: either `PCT` (global) or
    /// `SUITE=PCT` (per-suite). Percentages must be positive and
    /// finite. Repeating a suite key is a hard error — a CI script
    /// that says `shards=40` twice with different numbers has a bug,
    /// and silently letting the later flag win would hide which gate
    /// actually applied.
    ///
    /// # Errors
    /// A malformed or non-positive percentage, an empty or
    /// whitespace-only suite name, or a suite key that was already
    /// given.
    pub fn push_spec(&mut self, spec: &str) -> Result<(), String> {
        let (suite, pct_text) = match spec.split_once('=') {
            Some((suite, pct)) => (Some(suite), pct),
            None => (None, spec),
        };
        let pct: f64 = pct_text
            .parse()
            .map_err(|_| format!("--threshold: `{pct_text}` is not a number"))?;
        if !pct.is_finite() || pct <= 0.0 {
            return Err(format!(
                "--threshold: percentage must be positive and finite, got {pct}"
            ));
        }
        match suite {
            Some(suite) if suite.trim().is_empty() => {
                Err("--threshold: empty suite name in `=` form".to_string())
            }
            Some(suite) => {
                if self.per_suite.contains_key(suite) {
                    return Err(format!(
                        "--threshold: suite `{suite}` was already given; \
                         repeated per-suite thresholds are ambiguous"
                    ));
                }
                self.per_suite.insert(suite.to_string(), pct);
                Ok(())
            }
            None => {
                if self.global.is_some() {
                    return Err("--threshold: a global percentage was already given; \
                         repeated global thresholds are ambiguous"
                        .to_string());
                }
                self.global = Some(pct);
                Ok(())
            }
        }
    }

    /// The allowed regression percentage for `suite`.
    pub fn resolve(&self, suite: &str) -> f64 {
        self.per_suite
            .get(suite)
            .copied()
            .or(self.global)
            .unwrap_or(DEFAULT_THRESHOLD_PCT)
    }
}

/// One benchmark's stats pulled out of a baseline document.
pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) median_ns: f64,
}

pub(crate) fn load(path: &str) -> Result<(String, Vec<Entry>), String> {
    let text = fs::read_to_string(Path::new(path))
        .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let suite: String = doc.field("suite").map_err(|e| format!("{path}: {e}"))?;
    let rows: Vec<Json> = doc.field("rows").map_err(|e| format!("{path}: {e}"))?;
    let mut entries = Vec::new();
    for row in &rows {
        entries.push(Entry {
            name: row.field("name").map_err(|e| format!("{path}: {e}"))?,
            median_ns: row.field("median_ns").map_err(|e| format!("{path}: {e}"))?,
        });
    }
    Ok((suite, entries))
}

/// Runs the diff. Returns one message per regression (empty = pass).
pub fn run(old_path: &str, new_path: &str, thresholds: &Thresholds) -> Result<Vec<String>, String> {
    let (old_suite, old) = load(old_path)?;
    let (new_suite, new) = load(new_path)?;
    if old_suite != new_suite {
        return Err(format!(
            "baselines are from different suites: '{old_suite}' vs '{new_suite}'"
        ));
    }
    let threshold = thresholds.resolve(&new_suite);
    println!("    suite {new_suite}: threshold {threshold:.0}%");

    let mut failures = Vec::new();
    for o in &old {
        match new.iter().find(|n| n.name == o.name) {
            None => failures.push(format!(
                "{}: benchmark disappeared from the new baseline",
                o.name
            )),
            Some(n) if o.median_ns > 0.0 => {
                let delta_pct = (n.median_ns - o.median_ns) / o.median_ns * 100.0;
                let verdict = if delta_pct > threshold {
                    failures.push(format!(
                        "{}: median regressed {:+.1}% ({:.0} ns -> {:.0} ns, threshold {:.0}%)",
                        o.name, delta_pct, o.median_ns, n.median_ns, threshold
                    ));
                    "REGRESSED"
                } else if delta_pct < -threshold {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "    {:<50} {:>12.0} -> {:>12.0} ns  {:+7.1}%  {}",
                    o.name, o.median_ns, n.median_ns, delta_pct, verdict
                );
            }
            Some(_) => println!("    {:<50} old median is 0 ns; skipped", o.name),
        }
    }
    for n in &new {
        if !old.iter().any(|o| o.name == n.name) {
            println!("    {:<50} new benchmark ({:.0} ns)", n.name, n.median_ns);
        }
    }
    Ok(failures)
}

/// Workspace-relative directory of the per-commit baseline store.
const BENCH_STORE: &str = "results/bench";

/// The append-only index: one `"<sha> <basename>"` line per stored
/// baseline, newest last.
const INDEX_LOG: &str = "index.log";

/// The current commit's short hash, or `nosha` when git is unavailable
/// (tarball builds still get a working store).
fn short_sha(root: &Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "nosha".to_string())
}

/// The sha of the most recently stored baseline named `basename`, from
/// the index's newest matching line.
fn latest_stored(index: &str, basename: &str) -> Option<String> {
    index.lines().rev().find_map(|line| {
        let (sha, base) = line.split_once(' ')?;
        (base == basename).then(|| sha.to_string())
    })
}

/// Copies `new_path` into the store under `sha` and appends the index
/// line (skipped when it would duplicate the newest line, so re-runs of
/// one commit do not pad the log).
fn store_baseline(store: &Path, sha: &str, basename: &str, new_path: &str) -> Result<(), String> {
    let dir = store.join(sha);
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let dest = dir.join(basename);
    fs::copy(Path::new(new_path), &dest)
        .map_err(|e| format!("cannot store {} -> {}: {e}", new_path, dest.display()))?;
    let index_path = store.join(INDEX_LOG);
    let line = format!("{sha} {basename}");
    let existing = fs::read_to_string(&index_path).unwrap_or_default();
    if existing.lines().next_back() != Some(line.as_str()) {
        let mut out = existing;
        out.push_str(&line);
        out.push('\n');
        fs::write(&index_path, out)
            .map_err(|e| format!("cannot append {}: {e}", index_path.display()))?;
    }
    println!("    stored {}", dest.display());
    Ok(())
}

/// The `--latest` mode: diff `new_path` against the most recently
/// stored baseline of the same name (if any), then record it for the
/// current commit. Returns the diff's regressions.
pub fn run_latest(
    root: &Path,
    new_path: &str,
    thresholds: &Thresholds,
) -> Result<Vec<String>, String> {
    let store = root.join(BENCH_STORE);
    let basename = Path::new(new_path)
        .file_name()
        .ok_or_else(|| format!("{new_path} has no file name"))?
        .to_string_lossy()
        .to_string();
    let index = fs::read_to_string(store.join(INDEX_LOG)).unwrap_or_default();
    let failures = match latest_stored(&index, &basename) {
        Some(prev_sha) => {
            let old = store.join(&prev_sha).join(&basename);
            println!("    baseline: {} (commit {prev_sha})", old.display());
            run(&old.display().to_string(), new_path, thresholds)?
        }
        None => {
            println!("    no stored baseline named {basename}; recording only");
            Vec::new()
        }
    };
    store_baseline(&store, &short_sha(root), &basename, new_path)?;
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_baseline(dir: &Path, file: &str, suite: &str, rows: &[(&str, f64)]) -> String {
        let rows_json: Vec<String> = rows
            .iter()
            .map(|(name, median)| {
                format!(
                    "{{\"name\": \"{name}\", \"iters\": 1, \"samples\": 2, \
                     \"min_ns\": {median}, \"median_ns\": {median}, \
                     \"mean_ns\": {median}, \"max_ns\": {median}}}"
                )
            })
            .collect();
        let text = format!(
            "{{\"suite\": \"{suite}\", \"rows\": [{}]}}",
            rows_json.join(", ")
        );
        let path = dir.join(file);
        fs::write(&path, text).expect("tempdir is writable");
        path.display().to_string()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("etm-benchdiff-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("tempdir is creatable");
        dir
    }

    #[test]
    fn within_threshold_passes() {
        let dir = tempdir("pass");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0), ("b", 200.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 110.0), ("b", 150.0)]);
        let failures = run(&old, &new, &Thresholds::default()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let dir = tempdir("fail");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 180.0)]);
        let failures = run(&old, &new, &Thresholds::default()).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{failures:?}");
        // A custom threshold wide enough lets the same delta through.
        assert!(run(&old, &new, &Thresholds::global(90.0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn disappeared_benchmark_fails() {
        let dir = tempdir("gone");
        let old = write_baseline(&dir, "old.json", "s", &[("a", 100.0), ("b", 50.0)]);
        let new = write_baseline(&dir, "new.json", "s", &[("a", 100.0), ("c", 10.0)]);
        let failures = run(&old, &new, &Thresholds::default()).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("disappeared"), "{failures:?}");
    }

    #[test]
    fn mismatched_suites_error() {
        let dir = tempdir("suites");
        let old = write_baseline(&dir, "old.json", "alpha", &[("a", 1.0)]);
        let new = write_baseline(&dir, "new.json", "beta", &[("a", 1.0)]);
        assert!(run(&old, &new, &Thresholds::default()).is_err());
    }

    #[test]
    fn per_suite_threshold_overrides_global_and_default() {
        let mut t = Thresholds::default();
        t.push_spec("noisy=60").unwrap();
        assert_eq!(t.resolve("noisy"), 60.0);
        assert_eq!(t.resolve("quiet"), DEFAULT_THRESHOLD_PCT);
        t.push_spec("10").unwrap();
        assert_eq!(t.resolve("noisy"), 60.0, "per-suite beats global");
        assert_eq!(t.resolve("quiet"), 10.0, "global beats default");
    }

    #[test]
    fn threshold_specs_are_validated() {
        let mut t = Thresholds::default();
        assert!(t.push_spec("abc").is_err());
        assert!(t.push_spec("s=abc").is_err());
        assert!(t.push_spec("0").is_err());
        assert!(t.push_spec("s=-5").is_err());
        assert!(t.push_spec("=40").is_err());
        assert!(t.push_spec("  =40").is_err(), "whitespace-only suite");
        assert!(t.push_spec("inf").is_err());
    }

    #[test]
    fn repeated_threshold_targets_are_hard_errors() {
        let mut t = Thresholds::default();
        t.push_spec("shards=40").unwrap();
        let err = t.push_spec("shards=60").unwrap_err();
        assert!(err.contains("already given"), "{err}");
        // The rejected repeat must not clobber the original value.
        assert_eq!(t.resolve("shards"), 40.0);
        // A different suite is still fine after the error.
        t.push_spec("streaming=60").unwrap();
        assert_eq!(t.resolve("streaming"), 60.0);
        // The global percentage is single-shot too.
        t.push_spec("15").unwrap();
        assert!(t.push_spec("20").unwrap_err().contains("already given"));
        assert_eq!(t.resolve("quiet"), 15.0);
    }

    #[test]
    fn per_suite_threshold_gates_the_matching_suite_only() {
        let dir = tempdir("persuite");
        // A 50% regression in suite `shards`.
        let old = write_baseline(&dir, "old.json", "shards", &[("a", 100.0)]);
        let new = write_baseline(&dir, "new.json", "shards", &[("a", 150.0)]);
        // Default 25% gate fails it; `shards=60` lets it through; an
        // override for some other suite leaves the default in force.
        assert_eq!(run(&old, &new, &Thresholds::default()).unwrap().len(), 1);
        let mut wide = Thresholds::default();
        wide.push_spec("shards=60").unwrap();
        assert!(run(&old, &new, &wide).unwrap().is_empty());
        let mut other = Thresholds::default();
        other.push_spec("streaming=60").unwrap();
        assert_eq!(run(&old, &new, &other).unwrap().len(), 1);
    }

    #[test]
    fn latest_stored_returns_newest_matching_line() {
        let index = "abc BENCH_a.json\n\
                     def BENCH_b.json\n\
                     ghi BENCH_a.json\n";
        assert_eq!(latest_stored(index, "BENCH_a.json").as_deref(), Some("ghi"));
        assert_eq!(latest_stored(index, "BENCH_b.json").as_deref(), Some("def"));
        assert!(latest_stored(index, "BENCH_c.json").is_none());
        assert!(latest_stored("", "BENCH_a.json").is_none());
    }

    #[test]
    fn latest_mode_records_then_gates() {
        // A tempdir root outside any git repo: sha falls back to nosha.
        let root = tempdir("latest");
        let _ = fs::remove_dir_all(root.join(BENCH_STORE));
        let fresh = write_baseline(&root, "BENCH_s.json", "s", &[("a", 100.0)]);
        // First run: nothing stored yet, records only.
        let failures = run_latest(&root, &fresh, &Thresholds::default()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        let index = fs::read_to_string(root.join(BENCH_STORE).join(INDEX_LOG)).unwrap();
        assert!(index.contains("BENCH_s.json"), "{index}");
        assert!(root
            .join(BENCH_STORE)
            .join("nosha")
            .join("BENCH_s.json")
            .is_file());
        // Second run, same numbers: diff against the store passes, and
        // the duplicate index line is skipped.
        let failures = run_latest(&root, &fresh, &Thresholds::default()).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        let index = fs::read_to_string(root.join(BENCH_STORE).join(INDEX_LOG)).unwrap();
        assert_eq!(index.lines().count(), 1, "{index}");
        // Third run regresses: the stored baseline catches it, but the
        // regressed run is still recorded for the history.
        let slow = write_baseline(&root, "BENCH_s.json", "s", &[("a", 250.0)]);
        let failures = run_latest(&root, &slow, &Thresholds::default()).unwrap();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("regressed"), "{failures:?}");
        let stored =
            fs::read_to_string(root.join(BENCH_STORE).join("nosha").join("BENCH_s.json")).unwrap();
        assert!(stored.contains("250"), "{stored}");
        let _ = fs::remove_dir_all(&root);
    }
}
