//! Pass 2: in-tree source lints over the workspace's `src/` trees.
//!
//! Rules (comment lines and `#[cfg(test)]` blocks are exempt where
//! noted):
//!
//! * `unwrap()` is banned in non-test library/binary code — fitting and
//!   simulation paths must propagate errors or `expect` with a message
//!   explaining why the value exists. Per-crate allowlists cover code
//!   where an unwrap is load-bearing and documented.
//! * `todo!` / `unimplemented!` are banned everywhere, tests included:
//!   the tree never ships placeholders.
//! * `as f32` is banned in the numerics crates (`etm-lsq`, `etm-core`):
//!   the paper's coefficients span ~1e-10..1e3, so every narrowing to
//!   f32 there is a precision bug.
//! * every crate root carries `#![deny(unsafe_code)]`, and every
//!   `lib.rs` additionally `#![warn(missing_docs)]`.
//!
//! The walker skips `crates/xtask` itself: this file necessarily spells
//! out the banned patterns, and the crate is covered by the hermeticity
//! and toolchain passes.

use std::fs;
use std::path::{Path, PathBuf};

/// Crates (by directory name under `crates/`) allowed to keep
/// `unwrap()` in library code. Add an entry only with a comment saying
/// why; the gate prints the allowance so it stays visible.
const UNWRAP_ALLOWLIST: &[&str] = &[];

/// Crate directories where `as f32` narrowing is banned.
const NO_F32_CRATES: &[&str] = &["lsq", "core"];

/// Runs the pass. Returns one message per violation.
pub fn run(root: &Path) -> Result<Vec<String>, String> {
    let mut src_trees: Vec<(String, PathBuf)> = vec![("hetero-etm".to_string(), root.join("src"))];
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("cannot list {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/ entry: {e}"))?;
        let name = entry.file_name().to_string_lossy().to_string();
        if name == "xtask" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            src_trees.push((name, src));
        }
    }

    let mut violations = Vec::new();
    for (crate_name, src) in &src_trees {
        let mut files = Vec::new();
        collect_rs_files(src, &mut files)?;
        for file in files {
            let text = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            lint_file(
                crate_name,
                &rel.display().to_string(),
                &text,
                &mut violations,
            );
        }
    }
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read dir entry: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// True when `file` is a crate root (`lib.rs`, `main.rs`, or a
/// `src/bin/*.rs` binary root) that must carry the lint headers.
fn is_crate_root(file: &str) -> bool {
    file.ends_with("src/lib.rs") || file.ends_with("src/main.rs") || file.contains("src/bin/")
}

fn lint_file(crate_name: &str, file: &str, text: &str, out: &mut Vec<String>) {
    // Everything from the first `#[cfg(test)]` on is test code: the
    // workspace convention keeps the tests module last in the file.
    let test_start = text
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(usize::MAX);

    let allow_unwrap = UNWRAP_ALLOWLIST.contains(&crate_name);
    let ban_f32 = NO_F32_CRATES
        .iter()
        .any(|c| file.starts_with(&format!("crates/{c}/")));

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.starts_with("//") {
            continue;
        }
        let in_tests = idx >= test_start;
        if !in_tests && !allow_unwrap && line.contains(".unwrap()") {
            out.push(format!(
                "{file}:{lineno}: `unwrap()` in library code — return a Result or use \
                 `expect(\"why this cannot fail\")`"
            ));
        }
        if line.contains("todo!(") || line.contains("unimplemented!(") {
            out.push(format!(
                "{file}:{lineno}: `todo!`/`unimplemented!` must not ship"
            ));
        }
        if ban_f32 && line.contains("as f32") {
            out.push(format!(
                "{file}:{lineno}: `as f32` narrows f64 model math; keep f64 end to end"
            ));
        }
    }

    if is_crate_root(file) {
        if !text.contains("#![deny(unsafe_code)]") {
            out.push(format!(
                "{file}: crate root is missing `#![deny(unsafe_code)]`"
            ));
        }
        if file.ends_with("src/lib.rs") && !text.contains("#![warn(missing_docs)]") {
            out.push(format!(
                "{file}: lib.rs is missing `#![warn(missing_docs)]`"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(file: &str, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        lint_file("etm-demo", file, text, &mut out);
        out
    }

    #[test]
    fn unwrap_in_library_code_flagged() {
        let v = lint("crates/demo/src/a.rs", "fn f() { x().unwrap(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn unwrap_in_tests_and_comments_allowed() {
        let text = "//! docs with .unwrap() example\n\
                    fn f() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n    fn g() { x().unwrap(); }\n}\n";
        let v = lint("crates/demo/src/a.rs", text);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn todo_flagged_even_in_tests() {
        let text = "#[cfg(test)]\nmod tests {\n    fn g() { todo!() }\n}\n";
        let v = lint("crates/demo/src/a.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn as_f32_flagged_only_in_numerics_crates() {
        let text = "fn f(x: f64) -> f32 { x as f32 }\n";
        assert_eq!(lint("crates/lsq/src/a.rs", text).len(), 1);
        assert_eq!(lint("crates/core/src/a.rs", text).len(), 1);
        assert!(lint("crates/sim/src/a.rs", text).is_empty());
    }

    #[test]
    fn missing_headers_flagged_on_crate_roots() {
        let v = lint("crates/demo/src/lib.rs", "//! docs\npub fn f() {}\n");
        assert_eq!(v.len(), 2, "{v:?}");
        let v = lint("crates/demo/src/bin/tool.rs", "fn main() {}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let v = lint(
            "crates/demo/src/lib.rs",
            "#![deny(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
