//! Pass 2: in-tree source lints over the workspace's `src/` trees.
//!
//! Rules (comment lines and `#[cfg(test)]` blocks are exempt where
//! noted):
//!
//! * `unwrap()` is banned in non-test library/binary code — fitting and
//!   simulation paths must propagate errors or `expect` with a message
//!   explaining why the value exists. The only escape hatch is a
//!   per-file entry in [`UNWRAP_ALLOWANCES`], and even then every call
//!   site needs an adjacent `// unwrap-ok: <reason>` comment; stale
//!   entries (file gone, or no justified unwraps left) fail the gate so
//!   the list can only shrink.
//! * `expect(` is additionally banned in binary roots (`src/bin/**`)
//!   outside tests: a binary's failure path reaches users, so it must
//!   report errors (message + exit code) rather than panic. Library
//!   code may still `expect` with a justification message; diagnostics
//!   that genuinely want panics belong in `examples/`.
//! * `todo!` / `unimplemented!` are banned everywhere, tests included:
//!   the tree never ships placeholders.
//! * `as f32` is banned in the numerics crates (`etm-lsq`, `etm-core`):
//!   the paper's coefficients span ~1e-10..1e3, so every narrowing to
//!   f32 there is a precision bug.
//! * every crate root carries `#![deny(unsafe_code)]`, and every
//!   `lib.rs` additionally `#![warn(missing_docs)]`.
//!
//! The walker skips `crates/xtask` itself: this file necessarily spells
//! out the banned patterns, and the crate is covered by the hermeticity
//! and toolchain passes.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Files (workspace-relative path → reason) allowed to contain
/// `unwrap()` in library code. An entry only relaxes the rule from
/// "never" to "with a call-site justification": each allowed unwrap
/// must carry `// unwrap-ok: <reason>` on the same line or the line
/// above. Empty on purpose — the whole tree currently propagates errors
/// or uses `expect`.
const UNWRAP_ALLOWANCES: &[(&str, &str)] = &[];

/// Crate directories where `as f32` narrowing is banned.
const NO_F32_CRATES: &[&str] = &["lsq", "core"];

/// The comment marker that justifies an allowed unwrap call site.
const UNWRAP_OK: &str = "unwrap-ok:";

/// Runs the pass. Returns one message per violation.
pub fn run(root: &Path) -> Result<Vec<String>, String> {
    let mut src_trees: Vec<PathBuf> = vec![root.join("src")];
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("cannot list {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/ entry: {e}"))?;
        let name = entry.file_name().to_string_lossy().to_string();
        if name == "xtask" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            src_trees.push(src);
        }
    }

    let mut violations = Vec::new();
    let mut justified: BTreeMap<String, usize> = BTreeMap::new();
    for src in &src_trees {
        let mut files = Vec::new();
        collect_rs_files(src, &mut files)?;
        for file in files {
            let text = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            let allowed = UNWRAP_ALLOWANCES.iter().any(|(f, _)| *f == rel);
            let n = lint_file(&rel, &text, allowed, &mut violations);
            justified.insert(rel, n);
        }
    }
    violations.extend(stale_allowances(UNWRAP_ALLOWANCES, &justified));
    Ok(violations)
}

/// Allowance-list hygiene: every entry must point at a file the walker
/// visited that still contains at least one justified unwrap.
fn stale_allowances(
    allowances: &[(&str, &str)],
    justified: &BTreeMap<String, usize>,
) -> Vec<String> {
    let mut out = Vec::new();
    for (file, reason) in allowances {
        match justified.get(*file) {
            None => out.push(format!(
                "UNWRAP_ALLOWANCES entry `{file}` ({reason}) names a file the lint walker \
                 never visited — remove or fix the path"
            )),
            Some(0) => out.push(format!(
                "UNWRAP_ALLOWANCES entry `{file}` ({reason}) has no justified unwraps left \
                 — remove the entry"
            )),
            Some(_) => {}
        }
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read dir entry: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// True when `file` is a crate root (`lib.rs`, `main.rs`, or a
/// `src/bin/*.rs` binary root) that must carry the lint headers.
fn is_crate_root(file: &str) -> bool {
    file.ends_with("src/lib.rs") || file.ends_with("src/main.rs") || file.contains("src/bin/")
}

/// Lints one file. `allowed` marks files in [`UNWRAP_ALLOWANCES`].
/// Returns the number of justified unwrap call sites (for allowance
/// hygiene); violations accumulate in `out`.
fn lint_file(file: &str, text: &str, allowed: bool, out: &mut Vec<String>) -> usize {
    let lines: Vec<&str> = text.lines().collect();
    // Everything from the first `#[cfg(test)]` on is test code: the
    // workspace convention keeps the tests module last in the file.
    let test_start = lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(usize::MAX);

    let ban_f32 = NO_F32_CRATES
        .iter()
        .any(|c| file.starts_with(&format!("crates/{c}/")));

    let mut justified = 0usize;
    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.starts_with("//") {
            continue;
        }
        let in_tests = idx >= test_start;
        if !in_tests && line.contains(".unwrap()") {
            let here = line.contains(UNWRAP_OK);
            let above = idx > 0
                && lines[idx - 1].trim_start().starts_with("//")
                && lines[idx - 1].contains(UNWRAP_OK);
            match (allowed, here || above) {
                (true, true) => justified += 1,
                (true, false) => out.push(format!(
                    "{file}:{lineno}: `unwrap()` in an allowance-listed file still needs an \
                     adjacent `// {UNWRAP_OK} <reason>` comment"
                )),
                (false, _) => out.push(format!(
                    "{file}:{lineno}: `unwrap()` in library code — return a Result, use \
                     `expect(\"why this cannot fail\")`, or add an UNWRAP_ALLOWANCES entry \
                     plus a `// {UNWRAP_OK}` comment"
                )),
            }
        }
        if !in_tests && file.contains("src/bin/") && line.contains(".expect(") {
            out.push(format!(
                "{file}:{lineno}: `expect(` in a binary root — report the error and exit \
                 nonzero, or move panic-happy diagnostics to `examples/`"
            ));
        }
        if line.contains("todo!(") || line.contains("unimplemented!(") {
            out.push(format!(
                "{file}:{lineno}: `todo!`/`unimplemented!` must not ship"
            ));
        }
        if ban_f32 && line.contains("as f32") {
            out.push(format!(
                "{file}:{lineno}: `as f32` narrows f64 model math; keep f64 end to end"
            ));
        }
    }

    if is_crate_root(file) {
        if !text.contains("#![deny(unsafe_code)]") {
            out.push(format!(
                "{file}: crate root is missing `#![deny(unsafe_code)]`"
            ));
        }
        if file.ends_with("src/lib.rs") && !text.contains("#![warn(missing_docs)]") {
            out.push(format!(
                "{file}: lib.rs is missing `#![warn(missing_docs)]`"
            ));
        }
    }
    justified
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(file: &str, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        lint_file(file, text, false, &mut out);
        out
    }

    fn lint_allowed(file: &str, text: &str) -> (Vec<String>, usize) {
        let mut out = Vec::new();
        let n = lint_file(file, text, true, &mut out);
        (out, n)
    }

    #[test]
    fn unwrap_in_library_code_flagged() {
        let v = lint("crates/demo/src/a.rs", "fn f() { x().unwrap(); }\n");
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn unwrap_in_tests_and_comments_allowed() {
        let text = "//! docs with .unwrap() example\n\
                    fn f() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n    fn g() { x().unwrap(); }\n}\n";
        let v = lint("crates/demo/src/a.rs", text);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allowance_requires_adjacent_justification() {
        // Justified on the line above.
        let above = "fn f() {\n    // unwrap-ok: slot filled two lines up\n    x().unwrap();\n}\n";
        let (v, n) = lint_allowed("crates/demo/src/a.rs", above);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(n, 1);
        // Justified on the same line.
        let inline = "fn f() { x().unwrap(); } // unwrap-ok: infallible here\n";
        let (v, n) = lint_allowed("crates/demo/src/a.rs", inline);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(n, 1);
        // Allowance-listed file, but no justification comment: flagged.
        let bare = "fn f() { x().unwrap(); }\n";
        let (v, n) = lint_allowed("crates/demo/src/a.rs", bare);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("unwrap-ok"), "{v:?}");
        assert_eq!(n, 0);
    }

    #[test]
    fn justification_comment_does_not_help_unallowed_files() {
        let text = "// unwrap-ok: not listed, so this does nothing\nfn f() { x().unwrap(); }\n";
        let v = lint("crates/demo/src/a.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn stale_allowance_entries_flagged() {
        let allowances: &[(&str, &str)] = &[
            ("crates/demo/src/live.rs", "load-bearing"),
            ("crates/demo/src/clean.rs", "no longer true"),
            ("crates/demo/src/gone.rs", "deleted file"),
        ];
        let mut justified = BTreeMap::new();
        justified.insert("crates/demo/src/live.rs".to_string(), 2);
        justified.insert("crates/demo/src/clean.rs".to_string(), 0);
        let v = stale_allowances(allowances, &justified);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("clean.rs")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("gone.rs")), "{v:?}");
    }

    #[test]
    fn expect_flagged_only_in_binary_roots() {
        let text = "#![deny(unsafe_code)]\nfn main() { x().expect(\"boom\"); }\n";
        let v = lint("crates/demo/src/bin/tool.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("binary root"), "{v:?}");
        // Library code may expect (with a message).
        let v = lint("crates/demo/src/a.rs", "fn f() { x().expect(\"why\"); }\n");
        assert!(v.is_empty(), "{v:?}");
        // Test code in a binary may expect.
        let text = "#![deny(unsafe_code)]\nfn main() {}\n\
                    #[cfg(test)]\nmod tests {\n    fn g() { x().expect(\"t\"); }\n}\n";
        let v = lint("crates/demo/src/bin/tool.rs", text);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn todo_flagged_even_in_tests() {
        let text = "#[cfg(test)]\nmod tests {\n    fn g() { todo!() }\n}\n";
        let v = lint("crates/demo/src/a.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn as_f32_flagged_only_in_numerics_crates() {
        let text = "fn f(x: f64) -> f32 { x as f32 }\n";
        assert_eq!(lint("crates/lsq/src/a.rs", text).len(), 1);
        assert_eq!(lint("crates/core/src/a.rs", text).len(), 1);
        assert!(lint("crates/sim/src/a.rs", text).is_empty());
    }

    #[test]
    fn missing_headers_flagged_on_crate_roots() {
        let v = lint("crates/demo/src/lib.rs", "//! docs\npub fn f() {}\n");
        assert_eq!(v.len(), 2, "{v:?}");
        let v = lint("crates/demo/src/bin/tool.rs", "fn main() {}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let v = lint(
            "crates/demo/src/lib.rs",
            "#![deny(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
