//! Pass 3: toolchain gate — clippy with warnings denied and rustfmt in
//! check mode, both over the whole workspace.
//!
//! These shell out to the same `cargo` that invoked the xtask (the
//! build lock is free again by the time the xtask binary runs). Their
//! diagnostics stream straight to the user; the pass only records
//! pass/fail.

use std::path::Path;
use std::process::Command;

/// Runs the pass. Returns one message per failed tool.
pub fn run(root: &Path) -> Result<Vec<String>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut violations = Vec::new();
    let invocations: [&[&str]; 2] = [
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        &["fmt", "--all", "--check"],
    ];
    for args in invocations {
        let status = Command::new(&cargo)
            .args(args)
            .current_dir(root)
            .status()
            .map_err(|e| format!("cannot spawn `{cargo} {}`: {e}", args.join(" ")))?;
        if !status.success() {
            violations.push(format!("`cargo {}` failed ({status})", args.join(" ")));
        }
    }
    Ok(violations)
}
