//! Pass 4: model-validity audit.
//!
//! Builds a measurement database by running the simulated Basic
//! campaign (Table 2) on the paper's two-kind cluster, fits a full
//! model bank with **every serving fitting backend** (the paper's
//! `poly_lsq` and the relative-error `robust_poly`), and runs every
//! check registered in [`etm_core::validate`] over each bank. The Basic
//! plan is the only one whose construction sizes span the audit's whole
//! [400, 6400] sweep — the reduced NL/NS plans fit on a sub-range, and
//! a cubic extrapolated outside its fitting range legitimately goes
//! negative. Violations fail the gate; warnings are printed but pass.
//!
//! The campaign + fit is the slowest part of the gate, so both the
//! measurement database and the fitted banks are cached under
//! `target/etm-cache/` via [`etm_core::cache`], keyed on
//! [`etm_core::pipeline::campaign_fingerprint`] (a stable FNV-1a content
//! hash of the cluster spec, the plan, and NB) plus the backend name for
//! banks. A warm cache skips the campaign entirely; a miss — or a cache
//! file that fails to parse — falls back to a fresh campaign, fanned out
//! over [`etm_core::pipeline::campaign_threads`] workers, and
//! repopulates the cache. Delete `target/etm-cache/` (or bump
//! `CAMPAIGN_CACHE_VERSION`) to force a refit.
//!
//! A final **degraded-health** stage drives a live [`Engine`] into
//! quarantine on a synthetic fully-measured two-kind database and runs
//! [`etm_core::validate::audit_degraded`] over the published snapshot:
//! the health metadata must be self-consistent and the composed
//! fallback's coefficients must still pass the finite / non-negative
//! checks. (The paper cluster itself has a single measured kind, so its
//! quarantines never earn a donor — the synthetic database is what lets
//! the gate exercise the fallback rung at all.)

use std::path::Path;
use std::time::Instant;

use etm_cluster::spec::paper_cluster;
use etm_cluster::CommLibProfile;
use etm_core::backend::{ModelBackend, PolyLsqBackend, RobustPolyBackend};
use etm_core::cache::{bank_cache_name, cached_construction, load_json, store_json};
use etm_core::engine::{Engine, QuarantinePolicy};
use etm_core::pipeline::{campaign_fingerprint_hex, ModelBank};
use etm_core::plan::MeasurementPlan;
use etm_core::validate::{self, Severity};
use etm_core::{MeasurementDb, Sample, SampleKey};

/// HPL block size the audit campaign uses (the repro's NB).
const NB: usize = 64;

/// Runs the pass. Returns one message per violated invariant, across
/// the banks of every backend.
pub fn run(root: &Path) -> Result<Vec<String>, String> {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = MeasurementPlan::basic();
    let hex = campaign_fingerprint_hex(&spec, &plan, NB);
    let cache_dir = root.join("target").join("etm-cache");
    // The experimental `binned_poly` backend is deliberately absent:
    // its equal-regime Tc weighting trades the monotone-in-P invariant
    // at composed-model extrapolations (hypothetical Athlon×P configs
    // the campaign never measures), which this gate would fail. It is
    // validated by its unit tests and compared against `poly_lsq` by
    // the snapshot-pinned A/B harness in `etm-repro` instead.
    let backends: [Box<dyn ModelBackend>; 2] = [
        Box::new(PolyLsqBackend::paper()),
        Box::new(RobustPolyBackend::paper()),
    ];

    let mut violations = Vec::new();
    // The campaign database is shared by every backend; run it at most
    // once (and usually zero times — it caches too).
    let mut db: Option<MeasurementDb> = None;
    for backend in &backends {
        let bank_path = cache_dir.join(bank_cache_name(&hex, backend.name()));
        let (bank, provenance) = match load_json::<ModelBank>(&bank_path) {
            Some(bank) => (bank, format!("cache hit ({})", bank_path.display())),
            None => {
                let t0 = Instant::now();
                let db =
                    db.get_or_insert_with(|| cached_construction(&spec, &plan, NB, &cache_dir));
                let bank = backend
                    .fit(db)
                    .map_err(|e| format!("{} bank fit failed: {e}", backend.name()))?;
                if !store_json(&bank_path, &bank) {
                    println!(
                        "    warn: could not persist audit cache {}",
                        bank_path.display()
                    );
                }
                (
                    bank,
                    format!(
                        "cache miss; campaign + fit took {:.2} s -> {}",
                        t0.elapsed().as_secs_f64(),
                        bank_path.display()
                    ),
                )
            }
        };
        println!("    [{}] {provenance}", backend.name());
        println!(
            "    [{}] bank: {} N-T model(s), {} P-T model(s), {} composed kind(s)",
            backend.name(),
            bank.nt.len(),
            bank.pt.len(),
            bank.composed_kinds.len()
        );

        for check in validate::registry() {
            let findings = check.run(&bank);
            println!(
                "    [{}] {:<28} {:<48} {}",
                backend.name(),
                check.name,
                check.what,
                if findings.is_empty() {
                    "ok".to_string()
                } else {
                    format!("{} finding(s)", findings.len())
                }
            );
            for f in &findings {
                match f.severity {
                    Severity::Warning => println!("      warn: {}", f.message),
                    Severity::Violation => violations.push(format!("[{}] {f}", backend.name())),
                }
            }
        }
    }
    degraded_health(&mut violations)?;
    Ok(violations)
}

/// Poisons one group of a live engine past its quarantine budget and
/// audits the degraded snapshot's health metadata and fallback bank.
fn degraded_health(violations: &mut Vec<String>) -> Result<(), String> {
    const TARGET: (usize, usize) = (1, 1);
    let engine = Engine::new(Box::new(PolyLsqBackend::paper()), degraded_synth_db(), None)
        .map_err(|e| format!("degraded-health: engine build failed: {e}"))?
        .with_quarantine_policy(QuarantinePolicy {
            budget: 2,
            max_seconds: 1e6,
        });
    let key = SampleKey {
        kind: TARGET.0,
        pes: 1,
        m: TARGET.1,
    };
    let mut snapshot = engine.snapshot();
    // Three distinct bad (key, N) slots exceed the budget of two.
    for n in [400usize, 800, 1600] {
        let mut bad = degraded_synth_sample(TARGET.0, 1, TARGET.1, n);
        bad.wall = f64::NAN;
        snapshot = engine
            .ingest(&[(key, bad)])
            .map_err(|e| format!("degraded-health: poisoned ingest failed: {e}"))?;
    }
    let health = snapshot.health();
    if health.quarantined != vec![TARGET] {
        violations.push(format!(
            "degraded-health: expected quarantined {TARGET:?}, got {:?}",
            health.quarantined
        ));
    }
    if health.composed_fallback != vec![TARGET] {
        violations.push(format!(
            "degraded-health: expected composed fallback for {TARGET:?}, got {:?}",
            health.composed_fallback
        ));
    }
    let findings = validate::audit_degraded(snapshot.bank(), health);
    println!(
        "    [degraded-health] quarantined {:?}, fallback {:?}, {} finding(s)",
        health.quarantined,
        health.composed_fallback,
        findings.len()
    );
    for f in &findings {
        match f.severity {
            Severity::Warning => println!("      warn: {f}"),
            Severity::Violation => violations.push(format!("degraded-health: {f}")),
        }
    }
    Ok(())
}

/// A synthetic sample obeying the paper's shapes: cubic Ta that scales
/// with P, quadratic Tc with contention and parallel terms.
fn degraded_synth_sample(kind: usize, pes: usize, m: usize, n: usize) -> Sample {
    let x = n as f64;
    let p = (pes * m) as f64;
    let speed = if kind == 0 { 2.0 } else { 1.0 };
    let ta = (2e-9 * x * x * x / p + 1e-5 * x) / speed + 0.05;
    let tc = 1e-7 * x * x * (0.3 * p + 0.7 / p) + 0.01;
    Sample {
        n,
        ta,
        tc,
        wall: ta + tc,
        multi_node: pes > 1,
    }
}

/// Both kinds fully measured so the quarantined group has a healthy
/// donor and the engine can compose a fallback for it.
fn degraded_synth_db() -> MeasurementDb {
    let mut db = MeasurementDb::new();
    for kind in 0..2usize {
        for pes in [1usize, 2, 4] {
            for m in 1..=2usize {
                for n in [400usize, 800, 1600, 2400, 3200] {
                    db.record(
                        SampleKey { kind, pes, m },
                        degraded_synth_sample(kind, pes, m, n),
                    );
                }
            }
        }
    }
    db
}
