//! Pass 4: model-validity audit.
//!
//! Builds a measurement database by running the simulated Basic
//! campaign (Table 2) on the paper's two-kind cluster, fits the full
//! model bank, and runs every check registered in [`etm_core::validate`]
//! over it. The Basic plan is the only one whose construction sizes
//! span the audit's whole [400, 6400] sweep — the reduced NL/NS plans
//! fit on a sub-range, and a cubic extrapolated outside its fitting
//! range legitimately goes negative. Violations fail the gate; warnings
//! are printed but pass.
//!
//! The campaign + fit is the slowest part of the gate, so the fitted
//! bank is cached under `target/etm-cache/<fingerprint>.json`, keyed on
//! [`etm_core::pipeline::campaign_fingerprint`] (a stable FNV-1a content
//! hash of the cluster spec, the plan, and NB). A warm cache skips the
//! campaign entirely; a miss — or a cache file that fails to parse —
//! falls back to a fresh campaign, fanned out over
//! [`etm_core::pipeline::campaign_threads`] workers, and repopulates the
//! cache. Delete `target/etm-cache/` (or bump
//! `CAMPAIGN_CACHE_VERSION`) to force a refit.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use etm_cluster::spec::paper_cluster;
use etm_cluster::CommLibProfile;
use etm_core::compose::PAPER_TC_SCALE;
use etm_core::pipeline::{campaign_fingerprint_hex, run_construction, ModelBank};
use etm_core::plan::MeasurementPlan;
use etm_core::validate::{self, Severity};
use etm_support::json;

/// HPL block size the audit campaign uses (the repro's NB).
const NB: usize = 64;

/// The audited bank, plus where it came from (for the gate's log line).
fn audited_bank(root: &Path) -> Result<(ModelBank, String), String> {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = MeasurementPlan::basic();
    let cache = cache_path(root, campaign_fingerprint_hex(&spec, &plan, NB));

    if let Some(bank) = load_cached(&cache) {
        return Ok((bank, format!("cache hit ({})", cache.display())));
    }

    let t0 = Instant::now();
    let db = run_construction(&spec, &plan, NB);
    let bank =
        ModelBank::fit(&db, PAPER_TC_SCALE).map_err(|e| format!("model bank fit failed: {e}"))?;
    let elapsed = t0.elapsed();
    store_cached(&cache, &bank);
    Ok((
        bank,
        format!(
            "cache miss; campaign + fit took {:.2} s -> {}",
            elapsed.as_secs_f64(),
            cache.display()
        ),
    ))
}

fn cache_path(root: &Path, fingerprint: String) -> PathBuf {
    root.join("target")
        .join("etm-cache")
        .join(format!("{fingerprint}.json"))
}

/// Loads a cached bank; any miss or parse failure means "refit".
fn load_cached(path: &Path) -> Option<ModelBank> {
    let text = fs::read_to_string(path).ok()?;
    match json::from_str::<ModelBank>(&text) {
        Ok(bank) => Some(bank),
        Err(e) => {
            println!(
                "    cache entry {} is unreadable ({e}); refitting",
                path.display()
            );
            None
        }
    }
}

/// Best-effort cache write: a read-only target/ dir must not fail the
/// audit, only cost the next run a refit.
fn store_cached(path: &Path, bank: &ModelBank) {
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, json::to_string_pretty(bank))
    };
    if let Err(e) = write() {
        println!("    warn: could not persist audit cache: {e}");
    }
}

/// Runs the pass. Returns one message per violated invariant.
pub fn run(root: &Path) -> Result<Vec<String>, String> {
    let (bank, provenance) = audited_bank(root)?;
    println!("    {provenance}");
    println!(
        "    bank: {} N-T model(s), {} P-T model(s), {} composed kind(s)",
        bank.nt.len(),
        bank.pt.len(),
        bank.composed_kinds.len()
    );

    let mut violations = Vec::new();
    for check in validate::registry() {
        let findings = check.run(&bank);
        println!(
            "    {:<28} {:<55} {}",
            check.name,
            check.what,
            if findings.is_empty() {
                "ok".to_string()
            } else {
                format!("{} finding(s)", findings.len())
            }
        );
        for f in &findings {
            match f.severity {
                Severity::Warning => println!("      warn: {}", f.message),
                Severity::Violation => violations.push(f.to_string()),
            }
        }
    }
    Ok(violations)
}
