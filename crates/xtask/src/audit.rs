//! Pass 4: model-validity audit.
//!
//! Builds a measurement database by running the simulated Basic
//! campaign (Table 2) on the paper's two-kind cluster, fits the full
//! model bank, and runs every check registered in [`etm_core::validate`]
//! over it. The Basic plan is the only one whose construction sizes
//! span the audit's whole [400, 6400] sweep — the reduced NL/NS plans
//! fit on a sub-range, and a cubic extrapolated outside its fitting
//! range legitimately goes negative. Violations fail the gate; warnings
//! are printed but pass.

use std::path::Path;

use etm_cluster::spec::paper_cluster;
use etm_cluster::CommLibProfile;
use etm_core::compose::PAPER_TC_SCALE;
use etm_core::pipeline::{run_construction, ModelBank};
use etm_core::plan::MeasurementPlan;
use etm_core::validate::{self, Severity};

/// Runs the pass. Returns one message per violated invariant.
pub fn run(_root: &Path) -> Result<Vec<String>, String> {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = MeasurementPlan::basic();
    let db = run_construction(&spec, &plan, 64);
    let bank =
        ModelBank::fit(&db, PAPER_TC_SCALE).map_err(|e| format!("model bank fit failed: {e}"))?;
    println!(
        "    bank: {} N-T model(s), {} P-T model(s), {} composed kind(s)",
        bank.nt.len(),
        bank.pt.len(),
        bank.composed_kinds.len()
    );

    let mut violations = Vec::new();
    for check in validate::registry() {
        let findings = check.run(&bank);
        println!(
            "    {:<28} {:<55} {}",
            check.name,
            check.what,
            if findings.is_empty() {
                "ok".to_string()
            } else {
                format!("{} finding(s)", findings.len())
            }
        );
        for f in &findings {
            match f.severity {
                Severity::Warning => println!("      warn: {}", f.message),
                Severity::Violation => violations.push(f.to_string()),
            }
        }
    }
    Ok(violations)
}
