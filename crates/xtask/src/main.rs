//! `cargo xtask check` — the workspace's in-tree static-analysis gate.
//!
//! Four passes, all exercised by CI (`scripts/ci.sh`) and runnable
//! offline with an empty cargo cache:
//!
//! 1. **hermetic** — every dependency in every `Cargo.toml` is a path
//!    (or workspace-inherited path) dependency; no registry or git
//!    dependencies can sneak in.
//! 2. **lint** — the `etm-analyze` policy passes (token-aware
//!    successors of the old line-regex lint): bans `unwrap()` in
//!    non-test library code, `expect(` in binary roots,
//!    `todo!`/`unimplemented!` anywhere, `as f32` in the numerics
//!    crates, and missing `#![deny(unsafe_code)]` /
//!    `#![warn(missing_docs)]` crate headers.
//! 3. **toolchain** — `cargo clippy --workspace --all-targets -- -D
//!    warnings` and `cargo fmt --all --check`.
//! 4. **audit** — the model-validity audit (`etm_core::validate`): fits
//!    a model bank from the simulated paper cluster and runs every
//!    registered invariant check over it, then drives a live engine
//!    into quarantine and audits the degraded snapshot's health
//!    metadata and composed-fallback coefficients.
//!
//! Run a subset with e.g. `cargo xtask check hermetic lint`.
//!
//! A second subcommand, `cargo xtask bench-diff <old> <new>
//! [--threshold [SUITE=]PCT]...`, compares two `BENCH_<suite>.json`
//! baselines written by the `etm-bench` harness and fails on median
//! regressions; `--threshold` repeats, and a `SUITE=PCT` form
//! overrides the gate for that one suite. `cargo xtask bench-diff
//! --latest <new> [--threshold [SUITE=]PCT]...` instead diffs against
//! — and then updates — the per-commit baseline store under
//! `results/bench/<short-sha>/`.
//!
//! A third, `cargo xtask bench-trend [suite...]`, renders the store's
//! history (`results/bench/index.log`) as one markdown table of medians
//! per commit and suite, written to `results/bench/TREND.md`.
//!
//! A fourth, `cargo xtask analyze [--json PATH]`, runs the full
//! `etm-analyze` static concurrency analyzer (lock-order,
//! held-across-blocking, snapshot-discipline, panic-boundary, plus the
//! policy rules) over the workspace and fails on any finding not
//! covered by a justified `analyze.allow` entry — or on any stale
//! entry.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod audit;
mod benchdiff;
mod hermetic;
mod toolchain;
mod trend;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A single gate pass: a name for the CLI and a runner returning the
/// list of violations (empty = pass).
struct Pass {
    name: &'static str,
    what: &'static str,
    run: fn(&Path) -> Result<Vec<String>, String>,
}

const PASSES: [Pass; 4] = [
    Pass {
        name: "hermetic",
        what: "all manifest dependencies are path dependencies",
        run: hermetic::run,
    },
    Pass {
        name: "lint",
        what: "policy lints via etm-analyze (unwrap/bin-expect/todo!/as-f32/crate headers)",
        run: analyze::run_lint,
    },
    Pass {
        name: "toolchain",
        what: "cargo clippy -D warnings and cargo fmt --check",
        run: toolchain::run,
    },
    Pass {
        name: "audit",
        what: "model-validity audit + degraded-health metadata check",
        run: audit::run,
    },
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask check [pass...]\n       \
         cargo xtask analyze [--json PATH]\n       \
         cargo xtask bench-diff <old.json> <new.json> [--threshold [SUITE=]PCT]...\n       \
         cargo xtask bench-diff --latest <new.json> [--threshold [SUITE=]PCT]...\n       \
         cargo xtask bench-trend [suite...]\n\n\
         check passes (default: all, in order):"
    );
    for p in &PASSES {
        eprintln!("  {:<10} {}", p.name, p.what);
    }
    ExitCode::from(2)
}

/// `analyze` argument parsing + execution.
fn run_analyze(rest: &[String]) -> ExitCode {
    let mut json: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            json = match it.next() {
                Some(p) => Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path");
                    return usage();
                }
            };
        } else {
            eprintln!("unknown analyze argument `{arg}`");
            return usage();
        }
    }
    println!("==> analyze (static concurrency + policy passes)");
    match analyze::run_full(&workspace_root(), json.as_deref()) {
        Ok(true) => {
            println!("xtask analyze: clean");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("xtask analyze: FAILED");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("analyze: ERROR: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bench-diff` argument parsing + execution.
fn run_bench_diff(rest: &[String]) -> ExitCode {
    let mut paths: Vec<&str> = Vec::new();
    let mut thresholds = benchdiff::Thresholds::default();
    let mut latest = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            let Some(spec) = it.next() else {
                eprintln!("--threshold needs a percentage or SUITE=PCT");
                return usage();
            };
            if let Err(e) = thresholds.push_spec(spec) {
                eprintln!("{e}");
                return usage();
            }
        } else if arg == "--latest" {
            latest = true;
        } else {
            paths.push(arg);
        }
    }
    let result = if latest {
        let [new] = paths[..] else {
            return usage();
        };
        println!("==> bench-diff --latest {new}");
        benchdiff::run_latest(&workspace_root(), new, &thresholds)
    } else {
        let [old, new] = paths[..] else {
            return usage();
        };
        println!("==> bench-diff {old} -> {new}");
        benchdiff::run(old, new, &thresholds)
    };
    match result {
        Ok(failures) if failures.is_empty() => {
            println!("bench-diff: no median regressions");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                println!("    FAIL: {f}");
            }
            println!("bench-diff: {} regression(s)", failures.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-diff: ERROR: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `cargo run -p xtask` always starts in it, and
/// `CARGO_MANIFEST_DIR` points at `crates/xtask` as a fallback when the
/// binary is invoked from elsewhere.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) if root.join("Cargo.toml").is_file() => root.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    if cmd == "analyze" {
        return run_analyze(rest);
    }
    if cmd == "bench-diff" {
        return run_bench_diff(rest);
    }
    if cmd == "bench-trend" {
        println!("==> bench-trend");
        return match trend::run(&workspace_root(), rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench-trend: ERROR: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd != "check" {
        return usage();
    }
    let selected: Vec<&Pass> = if rest.is_empty() {
        PASSES.iter().collect()
    } else {
        let mut sel = Vec::new();
        for want in rest {
            match PASSES.iter().find(|p| p.name == want) {
                Some(p) => sel.push(p),
                None => {
                    eprintln!("unknown pass `{want}`");
                    return usage();
                }
            }
        }
        sel
    };

    let root = workspace_root();
    let mut failed = false;
    for pass in selected {
        println!("==> {} ({})", pass.name, pass.what);
        match (pass.run)(&root) {
            Ok(violations) if violations.is_empty() => println!("    ok"),
            Ok(violations) => {
                failed = true;
                for v in &violations {
                    println!("    FAIL: {v}");
                }
                println!("    {} violation(s)", violations.len());
            }
            Err(e) => {
                failed = true;
                println!("    ERROR: {e}");
            }
        }
    }
    if failed {
        println!("xtask check: FAILED");
        ExitCode::FAILURE
    } else {
        println!("xtask check: all passes green");
        ExitCode::SUCCESS
    }
}
