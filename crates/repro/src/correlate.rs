//! Estimate-vs-measurement correlation (the scatter plots of Figs. 6–15).

use etm_cluster::{ClusterSpec, Configuration, KindId};
use etm_core::engine::EngineSnapshot;
use etm_core::pipeline::campaign_threads;
use etm_core::plan::evaluation_configs;
use etm_hpl::{simulate_hpl, HplParams};
use etm_support::pool;

/// One point of a correlation plot.
#[derive(Clone, Debug, PartialEq)]
pub struct CorrelationPoint {
    /// The candidate configuration.
    pub config: Configuration,
    /// Fast-kind multiplicity `M₁` (the plots' series key; 0 = unused).
    pub m1: usize,
    /// Raw model estimate `T` (before adjustment).
    pub estimate_raw: f64,
    /// Adjusted estimate.
    pub estimate_adjusted: f64,
    /// Measured execution time `t`.
    pub measured: f64,
}

/// Runs the full 62-configuration correlation at one problem size:
/// estimate each configuration (raw and adjusted) and measure it. The
/// measurement half (a simulated HPL run per configuration) dominates,
/// so the grid fans out over the campaign worker pool; results come
/// back in grid order regardless of worker count. Estimates are served
/// from an engine snapshot, so the workers share it lock-free.
pub fn correlation_at(
    spec: &ClusterSpec,
    snapshot: &EngineSnapshot,
    n: usize,
    nb: usize,
) -> Vec<CorrelationPoint> {
    let configs = evaluation_configs();
    pool::par_map(&configs, campaign_threads(), |_, config| {
        let estimate_raw = snapshot.estimate_raw(config, n).ok()?;
        let estimate_adjusted = snapshot.estimate(config, n).ok()?;
        let measured = simulate_hpl(spec, config, &HplParams::order(n).with_nb(nb)).wall_seconds;
        let m1 = config.procs_per_pe(KindId(snapshot.fast_kind()));
        Some(CorrelationPoint {
            config: config.clone(),
            m1,
            estimate_raw,
            estimate_adjusted,
            measured,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Mean absolute relative deviation of a correlation set, using the
/// chosen estimate field.
pub fn mean_abs_rel_error(points: &[CorrelationPoint], adjusted: bool) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points
        .iter()
        .map(|p| {
            let e = if adjusted {
                p.estimate_adjusted
            } else {
                p.estimate_raw
            };
            ((e - p.measured) / p.measured).abs()
        })
        .sum::<f64>()
        / points.len() as f64
}

/// The Table 4/7/9 row for one problem size: best-by-estimate vs
/// best-by-measurement and the two error ratios.
#[derive(Clone, Debug)]
pub struct BestConfigRow {
    /// Problem size.
    pub n: usize,
    /// Configuration the model picks.
    pub estimated_best: Configuration,
    /// Its estimated time τ.
    pub tau: f64,
    /// Its *measured* time τ̂.
    pub tau_hat: f64,
    /// Configuration that actually measures fastest.
    pub actual_best: Configuration,
    /// Its measured time T̂.
    pub t_hat: f64,
}

impl BestConfigRow {
    /// `(τ − T̂)/T̂`: how far the estimate is from the true optimum time.
    pub fn estimate_error(&self) -> f64 {
        (self.tau - self.t_hat) / self.t_hat
    }

    /// `(τ̂ − T̂)/T̂`: the execution-time penalty of trusting the model —
    /// the paper's headline metric (0%–3.6% for the Basic model).
    pub fn selection_penalty(&self) -> f64 {
        (self.tau_hat - self.t_hat) / self.t_hat
    }
}

/// Computes the best-configuration comparison at one problem size from a
/// pre-measured correlation set.
pub fn best_config_row(points: &[CorrelationPoint], n: usize) -> BestConfigRow {
    let est_best = points
        .iter()
        .min_by(|a, b| a.estimate_adjusted.total_cmp(&b.estimate_adjusted))
        .expect("non-empty grid");
    let meas_best = points
        .iter()
        .min_by(|a, b| a.measured.total_cmp(&b.measured))
        .expect("non-empty grid");
    BestConfigRow {
        n,
        estimated_best: est_best.config.clone(),
        tau: est_best.estimate_adjusted,
        tau_hat: est_best.measured,
        actual_best: meas_best.config.clone(),
        t_hat: meas_best.measured,
    }
}
