//! One function per table/figure of the paper. Each returns structured
//! rows; the `repro` binary renders them as text + CSV, and `etm-bench`
//! measures them.

use etm_cluster::spec::paper_cluster;
use etm_cluster::{ClusterSpec, CommLibProfile, Configuration, KindId};
use etm_core::backend::{ModelBackend, PolyLsqBackend};
use etm_core::cache::{cached_construction, CACHE_DIR};
use etm_core::engine::Engine;
use etm_core::pipeline::{campaign_threads, Estimator};
use etm_core::plan::{MeasurementPlan, PlanKind};
use etm_core::MeasurementDb;
use etm_hpl::{simulate_hpl, HplParams};
use etm_mpisim::netpipe::{fig2_block_sizes, intra_node_sweep, ThroughputSample};
use etm_support::pool;

use crate::correlate::{best_config_row, correlation_at, BestConfigRow, CorrelationPoint};

/// Block size used throughout the reproduction (HPL default-ish).
pub const NB: usize = 64;

/// Fig. 1: multiprocessing Gflops on a single Athlon, `n` processes per
/// CPU, under one communication-library profile.
pub fn fig1_multiprocessing(profile: CommLibProfile) -> Vec<(usize, usize, f64)> {
    let spec = paper_cluster(profile);
    let cells: Vec<(usize, usize)> = (1..=4usize)
        .flat_map(|m| {
            [1000usize, 2000, 3000, 4000, 5000, 6000, 7000]
                .into_iter()
                .map(move |n| (m, n))
        })
        .collect();
    pool::par_map(&cells, campaign_threads(), |_, &(m, n)| {
        let cfg = Configuration::p1m1_p2m2(1, m, 0, 0);
        let run = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(NB));
        (m, n, run.gflops)
    })
}

/// Fig. 2: NetPIPE-style intra-node throughput sweep for a profile.
pub fn fig2_netpipe(profile: CommLibProfile) -> Vec<ThroughputSample> {
    let spec = paper_cluster(profile);
    intra_node_sweep(&spec, &fig2_block_sizes())
}

/// A named configuration series for Fig. 3.
#[derive(Clone, Debug)]
pub struct GflopsSeries {
    /// Series label as in the paper's legend.
    pub label: String,
    /// `(N, Gflops)` points.
    pub points: Vec<(usize, f64)>,
}

fn gflops_series(
    spec: &ClusterSpec,
    label: &str,
    cfg: Configuration,
    ns: &[usize],
) -> GflopsSeries {
    GflopsSeries {
        label: label.to_string(),
        points: pool::par_map(ns, campaign_threads(), |_, &n| {
            let run = simulate_hpl(spec, &cfg, &HplParams::order(n).with_nb(NB));
            (n, run.gflops)
        }),
    }
}

/// Fig. 3(a): load imbalance — Athlon×1 vs Ath+P2×4 vs P2×5.
pub fn fig3a_load_imbalance() -> Vec<GflopsSeries> {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let ns = [
        1000usize, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000,
    ];
    vec![
        gflops_series(
            &spec,
            "Athlon x 1",
            Configuration::p1m1_p2m2(1, 1, 0, 0),
            &ns,
        ),
        gflops_series(
            &spec,
            "Ath x 1 + P2 x 4",
            Configuration::p1m1_p2m2(1, 1, 4, 1),
            &ns,
        ),
        gflops_series(&spec, "P2 x 5", Configuration::p1m1_p2m2(0, 0, 5, 1), &ns),
    ]
}

/// Fig. 3(b): multiprocessing on the heterogeneous subset —
/// `Athlon(nP) + P2×4` for n = 1..4, plus the Athlon-alone reference.
pub fn fig3b_multiprocess() -> Vec<GflopsSeries> {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let ns = [
        1000usize, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000,
    ];
    let mut series = vec![gflops_series(
        &spec,
        "Athlon x 1",
        Configuration::p1m1_p2m2(1, 1, 0, 0),
        &ns,
    )];
    for m in 1..=4usize {
        series.push(gflops_series(
            &spec,
            &format!("n = {m}"),
            Configuration::p1m1_p2m2(1, m, 4, 1),
            &ns,
        ));
    }
    series
}

/// The construction-campaign cost accounting of Tables 3 and 6:
/// per-N measurement seconds for each kind, plus totals.
#[derive(Clone, Debug)]
pub struct CampaignCost {
    /// Which campaign.
    pub plan: PlanKind,
    /// `(N, athlon_seconds, pentium_seconds)` ascending in N.
    pub rows: Vec<(usize, f64, f64)>,
    /// Total simulated measurement seconds.
    pub total: f64,
}

/// Runs (or replays) a plan's construction campaign on the paper
/// cluster. Basic, NL and NS all route through the same
/// campaign-fingerprint-keyed cache under `target/etm-cache/`, so the
/// expensive simulated measurements run once per campaign schema.
pub fn campaign_db(plan: &MeasurementPlan) -> MeasurementDb {
    let spec = paper_cluster(CommLibProfile::mpich122());
    cached_construction(&spec, plan, NB, std::path::Path::new(CACHE_DIR))
}

/// Runs a plan's construction campaign and accounts its cost.
pub fn campaign_cost(plan: &MeasurementPlan) -> (MeasurementDb, CampaignCost) {
    let db = campaign_db(plan);
    let a = db.cost_by_n(KindId(0));
    let p = db.cost_by_n(KindId(1));
    let mut rows = Vec::new();
    for (n, at) in &a {
        let pt = p
            .iter()
            .find(|(pn, _)| pn == n)
            .map(|(_, t)| *t)
            .unwrap_or(0.0);
        rows.push((*n, *at, pt));
    }
    let cost = CampaignCost {
        plan: plan.kind,
        rows,
        total: db.total_cost(),
    };
    (db, cost)
}

/// Builds the serving engine for a campaign on the paper cluster:
/// cached construction measurements, the paper's polynomial-LSQ
/// backend, and the §4.1 adjustment measured at the paper's reference
/// configuration.
pub fn engine_for(plan: &MeasurementPlan) -> Engine {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let db = campaign_db(plan);
    Engine::from_campaign(&spec, plan, NB, db, Box::new(PolyLsqBackend::paper()))
        .expect("pipeline fits")
}

/// Builds the estimator for a campaign on the paper cluster.
pub fn estimator_for(plan: &MeasurementPlan) -> Estimator {
    engine_for(plan).snapshot().estimator().clone()
}

/// The full evaluation of one campaign: correlations at every evaluation
/// N and the best-configuration table.
#[derive(Clone, Debug)]
pub struct CampaignEvaluation {
    /// Which campaign.
    pub plan: PlanKind,
    /// Correlation points per evaluation N.
    pub correlations: Vec<(usize, Vec<CorrelationPoint>)>,
    /// One row per evaluation N (Tables 4/7/9).
    pub best_rows: Vec<BestConfigRow>,
}

/// Runs a campaign end-to-end: fit models, correlate and pick best
/// configurations at every evaluation size.
pub fn evaluate_campaign(plan: &MeasurementPlan) -> CampaignEvaluation {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let snapshot = engine_for(plan).snapshot();
    let mut correlations = Vec::new();
    let mut best_rows = Vec::new();
    for &n in &plan.evaluation_ns {
        let points = correlation_at(&spec, &snapshot, n, NB);
        best_rows.push(best_config_row(&points, n));
        correlations.push((n, points));
    }
    CampaignEvaluation {
        plan: plan.kind,
        correlations,
        best_rows,
    }
}

/// §4 timing claims: how long model construction and the 62-config
/// estimation take (the paper: 0.69 ms / 0.52 ms and 35 ms / 26.4 ms on
/// an AthlonXP 2600+). Fitting is timed through the backend trait and
/// estimation through a lock-free engine snapshot — the same paths every
/// serving query takes.
pub fn timing_claims(plan: &MeasurementPlan) -> (f64, f64) {
    let db = campaign_db(plan);
    let backend = PolyLsqBackend::paper();
    let t0 = std::time::Instant::now();
    let bank = backend.fit(&db).expect("fit");
    let fit_seconds = t0.elapsed().as_secs_f64();
    assert!(!bank.nt.is_empty());
    let engine = Engine::new(Box::new(backend), db, None).expect("pipeline fits");
    let snapshot = engine.snapshot();
    let configs = etm_core::plan::evaluation_configs();
    let t1 = std::time::Instant::now();
    let mut acc = 0.0;
    for c in &configs {
        if let Ok(t) = snapshot.estimate(c, 6400) {
            acc += t;
        }
    }
    let estimate_seconds = t1.elapsed().as_secs_f64();
    assert!(acc > 0.0);
    (fit_seconds, estimate_seconds)
}

/// Ablation: what if the paper had used its (installed but unused)
/// gigabit network? Wall seconds of representative configurations under
/// both networks.
pub fn ablation_network() -> Vec<(String, usize, f64, f64)> {
    use etm_cluster::NetworkSpec;
    let mut fast = paper_cluster(CommLibProfile::mpich122());
    let mut giga = paper_cluster(CommLibProfile::mpich122());
    fast.network = NetworkSpec::fast_ethernet();
    giga.network = NetworkSpec::gigabit();
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("Athlon x1", Configuration::p1m1_p2m2(1, 1, 0, 0)),
        ("Ath(1)+P2x8", Configuration::p1m1_p2m2(1, 1, 8, 1)),
        ("Ath(4)+P2x8", Configuration::p1m1_p2m2(1, 4, 8, 1)),
    ] {
        for n in [1600usize, 3200, 6400] {
            let t_fast = simulate_hpl(&fast, &cfg, &HplParams::order(n).with_nb(NB)).wall_seconds;
            let t_giga = simulate_hpl(&giga, &cfg, &HplParams::order(n).with_nb(NB)).wall_seconds;
            rows.push((label.to_string(), n, t_fast, t_giga));
        }
    }
    rows
}

/// Ablation: HPL block size NB. The paper fixes NB; this sweep shows the
/// granularity-vs-BLAS3-efficiency trade the simulator captures.
pub fn ablation_block_size() -> Vec<(usize, usize, f64)> {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let cfg = Configuration::p1m1_p2m2(1, 2, 8, 1);
    let mut rows = Vec::new();
    for n in [3200usize, 6400] {
        for nb in [16usize, 32, 64, 128, 256] {
            let t = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(nb)).wall_seconds;
            rows.push((n, nb, t));
        }
    }
    rows
}

/// Ablation: panel broadcast algorithm (HPL's BCAST option): increasing
/// ring (the paper's default) vs binomial tree.
pub fn ablation_bcast() -> Vec<(String, usize, f64, f64)> {
    use etm_hpl::BcastAlgo;
    let spec = paper_cluster(CommLibProfile::mpich122());
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("Ath(1)+P2x8", Configuration::p1m1_p2m2(1, 1, 8, 1)),
        ("Ath(4)+P2x8", Configuration::p1m1_p2m2(1, 4, 8, 1)),
    ] {
        for n in [1600usize, 4800] {
            let ring = simulate_hpl(
                &spec,
                &cfg,
                &HplParams::order(n).with_nb(NB).with_bcast(BcastAlgo::Ring),
            )
            .wall_seconds;
            let binom = simulate_hpl(
                &spec,
                &cfg,
                &HplParams::order(n)
                    .with_nb(NB)
                    .with_bcast(BcastAlgo::Binomial),
            )
            .wall_seconds;
            rows.push((label.to_string(), n, ring, binom));
        }
    }
    rows
}

/// Extension: process-grid shape (§3.1's "any other process grid").
/// Wall seconds for 1×P vs squarer factorizations of the same PEs.
pub fn ablation_grid_shape() -> Vec<(String, usize, f64)> {
    use etm_hpl::{simulate_hpl_grid, GridShape};
    let spec = paper_cluster(CommLibProfile::mpich122());
    let cfg = Configuration::p1m1_p2m2(0, 0, 8, 1);
    let mut rows = Vec::new();
    for n in [1600usize, 3200, 6400] {
        for grid in [
            GridShape::one_by(8),
            GridShape { rows: 2, cols: 4 },
            GridShape { rows: 4, cols: 2 },
        ] {
            let t =
                simulate_hpl_grid(&spec, &cfg, &HplParams::order(n).with_nb(NB), grid).wall_seconds;
            rows.push((format!("{}x{}", grid.rows, grid.cols), n, t));
        }
    }
    rows
}

/// Extension: the three load-balancing strategies head-to-head —
/// unmodified HPL (equal distribution), the paper's multiprocessing
/// remedy (best M₁), and the related-work rewrite (speed-weighted
/// distribution, §2). Returns `(n, equal, best_multiproc, m1_best,
/// weighted)` wall seconds.
pub fn baselines_comparison() -> Vec<(usize, f64, f64, usize, f64)> {
    use etm_hpl::simulate_hpl_weighted;
    let spec = paper_cluster(CommLibProfile::mpich122());
    let mut rows = Vec::new();
    for n in [1600usize, 3200, 4800, 6400, 9600] {
        let params = HplParams::order(n).with_nb(NB);
        let equal =
            simulate_hpl(&spec, &Configuration::p1m1_p2m2(1, 1, 8, 1), &params).wall_seconds;
        let (m1_best, multi) = (1..=6usize)
            .map(|m1| {
                (
                    m1,
                    simulate_hpl(&spec, &Configuration::p1m1_p2m2(1, m1, 8, 1), &params)
                        .wall_seconds,
                )
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        let weighted = simulate_hpl_weighted(&spec, &Configuration::p1m1_p2m2(1, 1, 8, 1), &params)
            .wall_seconds;
        rows.push((n, equal, multi, m1_best, weighted));
    }
    rows
}
