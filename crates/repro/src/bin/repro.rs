//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage: `repro <experiment>` where experiment is one of the names in
//! [`USAGE`] (the `usage_matches_dispatch_table` test keeps that list
//! in sync with the dispatch table, and the unknown-subcommand error
//! prints it in full).
//!
//! `shards` honors `ETM_STREAM_PACE=<scale>`: when set, the source is
//! wall-clock paced at `sim_time / scale` (1.0 = real campaign time);
//! unset streams at full speed, which is what CI measures.
//!
//! Text renderings go to stdout; CSV artifacts go to `results/`.

#![deny(unsafe_code)]

use etm_cluster::spec::paper_cluster;
use etm_cluster::CommLibProfile;
use etm_core::plan::MeasurementPlan;
use etm_repro::correlate::CorrelationPoint;
use etm_repro::experiments::{
    campaign_cost, evaluate_campaign, fig1_multiprocessing, fig2_netpipe, fig3a_load_imbalance,
    fig3b_multiprocess, timing_claims, CampaignEvaluation,
};
use etm_repro::table::TextTable;
use etm_repro::write_csv;

/// One dispatch-table entry: the accepted names (aliases share a
/// runner — a figure and its table regenerate together) and what runs.
type Experiment = (&'static [&'static str], fn());

/// The dispatch table, in `all`'s execution order.
const EXPERIMENTS: &[Experiment] = &[
    (&["table1"], table1),
    (&["plans"], plans),
    (&["fig1"], fig1),
    (&["fig2"], fig2),
    (&["fig3"], fig3),
    (&["table3"], table3),
    (&["table6"], table6),
    // The three campaign evaluations (correlations + best-config tables).
    (&["fig6_7", "table4"], basic_campaign),
    (&["fig8_11", "table7"], nl_campaign),
    (&["fig12_15", "table9"], ns_campaign),
    (&["timings"], timings),
    (&["ablations"], ablations),
    (&["models"], models),
    (&["baselines"], baselines),
    (&["stream"], stream),
    (&["ab"], ab),
    (&["chaos"], chaos),
    (&["shards"], shards),
    (&["serve"], serve),
    (&["pareto"], pareto),
    (&["loop"], loop_replay),
];

/// Space-separated usage list; `usage_matches_dispatch_table` pins it
/// to [`EXPERIMENTS`] so it cannot drift.
const USAGE: &str = "table1 plans fig1 fig2 fig3 table3 table6 fig6_7 table4 \
     fig8_11 table7 fig12_15 table9 timings ablations models baselines \
     stream ab chaos shards serve pareto loop all";

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    let mut matched = all;
    for (aliases, run) in EXPERIMENTS {
        if all || aliases.contains(&which.as_str()) {
            run();
            matched = true;
        }
    }
    if !matched {
        eprintln!("unknown experiment: {which}");
        eprintln!("available: {USAGE}");
        std::process::exit(2);
    }
}

fn table1() {
    println!("\n== Table 1: HPL execution environment (simulated analogue) ==");
    let spec = paper_cluster(CommLibProfile::mpich122());
    let mut t = TextTable::new(vec!["node", "kind", "cpus", "memory MB", "peak Gflops"]);
    for node in &spec.nodes {
        let k = spec.kind(node.kind);
        t.row(vec![
            node.name.clone(),
            k.name.clone(),
            node.cpus.to_string(),
            format!("{:.0}", node.memory_bytes / 1048576.0),
            format!("{:.2}", k.peak_flops / 1e9),
        ]);
    }
    print!("{}", t.render());
    println!(
        "network: {:.1} MB/s, {:.0} us latency; comm lib: {}",
        spec.network.bandwidth / 1e6,
        spec.network.latency * 1e6,
        spec.comm_lib.name
    );
}

fn plans() {
    println!("\n== Tables 2/5/8: measurement campaigns ==");
    for plan in [
        MeasurementPlan::basic(),
        MeasurementPlan::nl(),
        MeasurementPlan::ns(),
    ] {
        println!(
            "{:?}: construction {} trials over N={:?} ({} configs/N); evaluation {} points over N={:?}",
            plan.kind,
            plan.construction.len(),
            plan.construction_ns,
            plan.configs_per_n(),
            plan.evaluation.len(),
            plan.evaluation_ns,
        );
    }
}

fn fig1() {
    println!("\n== Fig 1: multiprocessing performance of the Athlon, two MPICH profiles ==");
    for (tag, profile) in [
        ("a_mpich121", CommLibProfile::mpich121()),
        ("b_mpich122", CommLibProfile::mpich122()),
    ] {
        let rows = fig1_multiprocessing(profile.clone());
        let mut t = TextTable::new(vec!["n (P/CPU)", "N", "Gflops"]);
        let csv: Vec<String> = rows
            .iter()
            .map(|(m, n, g)| {
                t.row(vec![m.to_string(), n.to_string(), format!("{g:.3}")]);
                format!("{m},{n},{g:.4}")
            })
            .collect();
        println!("-- {} --", profile.name);
        print!("{}", t.render());
        write_csv(&format!("fig1{tag}"), "procs_per_cpu,n,gflops", &csv);
    }
}

fn fig2() {
    println!("\n== Fig 2: intra-node throughput vs block size (NetPIPE analogue) ==");
    for (tag, profile) in [
        ("a_mpich121", CommLibProfile::mpich121()),
        ("b_mpich122", CommLibProfile::mpich122()),
    ] {
        let samples = fig2_netpipe(profile.clone());
        let mut t = TextTable::new(vec!["block KiB", "Gbps"]);
        let csv: Vec<String> = samples
            .iter()
            .map(|s| {
                t.row(vec![
                    format!("{:.0}", s.block_bytes / 1024.0),
                    format!("{:.3}", s.bits_per_sec / 1e9),
                ]);
                format!("{},{:.1}", s.block_bytes, s.bits_per_sec)
            })
            .collect();
        println!("-- {} --", profile.name);
        print!("{}", t.render());
        write_csv(&format!("fig2{tag}"), "block_bytes,bits_per_sec", &csv);
    }
}

fn fig3() {
    println!("\n== Fig 3: HPL performance of heterogeneous configurations ==");
    for (tag, series) in [
        ("a_loadimbalance", fig3a_load_imbalance()),
        ("b_multiprocess", fig3b_multiprocess()),
    ] {
        println!("-- fig3{tag} --");
        let mut csv = Vec::new();
        for s in &series {
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|(n, g)| format!("N={n}:{g:.2}"))
                .collect();
            println!("{:>18}: {}", s.label, pts.join(" "));
            for (n, g) in &s.points {
                csv.push(format!("{},{},{:.4}", s.label, n, g));
            }
        }
        write_csv(&format!("fig3{tag}"), "series,n,gflops", &csv);
    }
}

fn cost_table(plan: &MeasurementPlan, name: &str) {
    let (_, cost) = campaign_cost(plan);
    let mut t = TextTable::new(vec!["N", "Athlon [s]", "Pentium-II [s]"]);
    let mut csv = Vec::new();
    let (mut ta, mut tp) = (0.0, 0.0);
    for (n, a, p) in &cost.rows {
        t.row(vec![n.to_string(), format!("{a:.1}"), format!("{p:.1}")]);
        csv.push(format!("{n},{a:.2},{p:.2}"));
        ta += a;
        tp += p;
    }
    t.row(vec![
        "Total".to_string(),
        format!("{ta:.1}"),
        format!("{tp:.1}"),
    ]);
    print!("{}", t.render());
    println!(
        "total measurement time: {:.0} simulated seconds (~{:.1} h)",
        cost.total,
        cost.total / 3600.0
    );
    write_csv(name, "n,athlon_seconds,pentium_seconds", &csv);
}

fn table3() {
    println!("\n== Table 3: measurement cost of the Basic campaign ==");
    cost_table(&MeasurementPlan::basic(), "table3_basic_cost");
}

fn table6() {
    println!("\n== Table 6: measurement cost of the NL/NS campaigns ==");
    println!("-- NL --");
    cost_table(&MeasurementPlan::nl(), "table6_nl_cost");
    println!("-- NS --");
    cost_table(&MeasurementPlan::ns(), "table6_ns_cost");
}

fn correlation_csv(name: &str, points: &[CorrelationPoint]) {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{},{:.3},{:.3},{:.3}",
                p.m1,
                p.config.total_processes(),
                p.estimate_raw,
                p.estimate_adjusted,
                p.measured
            )
        })
        .collect();
    write_csv(
        name,
        "m1,total_procs,estimate_raw,estimate_adjusted,measured",
        &rows,
    );
}

fn best_table(eval: &CampaignEvaluation, spec_name: &str, csv_name: &str) {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let mut t = TextTable::new(vec![
        "N",
        "estimated best",
        "tau",
        "tau_hat",
        "actual best",
        "T_hat",
        "(tau-T)/T",
        "(tauh-T)/T",
    ]);
    let mut csv = Vec::new();
    for r in &eval.best_rows {
        t.row(vec![
            r.n.to_string(),
            r.estimated_best.label(&spec),
            format!("{:.1}", r.tau),
            format!("{:.1}", r.tau_hat),
            r.actual_best.label(&spec),
            format!("{:.1}", r.t_hat),
            format!("{:+.3}", r.estimate_error()),
            format!("{:+.3}", r.selection_penalty()),
        ]);
        csv.push(format!(
            "{},{},{:.3},{:.3},{},{:.3},{:.4},{:.4}",
            r.n,
            r.estimated_best.label(&spec),
            r.tau,
            r.tau_hat,
            r.actual_best.label(&spec),
            r.t_hat,
            r.estimate_error(),
            r.selection_penalty()
        ));
    }
    println!("-- {spec_name} --");
    print!("{}", t.render());
    write_csv(
        csv_name,
        "n,estimated_best,tau,tau_hat,actual_best,t_hat,estimate_error,selection_penalty",
        &csv,
    );
}

fn basic_campaign() {
    println!("\n== Basic model: Figs 6/7 correlations + Table 4 best configurations ==");
    let eval = evaluate_campaign(&MeasurementPlan::basic());
    for (n, points) in &eval.correlations {
        if *n == 6400 {
            correlation_csv("fig6_7_basic_correlation_n6400", points);
        }
    }
    best_table(&eval, "Table 4 (Basic model)", "table4_basic_best");
}

fn nl_campaign() {
    println!("\n== NL model: Figs 8-11 correlations + Table 7 best configurations ==");
    let eval = evaluate_campaign(&MeasurementPlan::nl());
    for (n, points) in &eval.correlations {
        if *n == 1600 {
            correlation_csv("fig8_10_nl_correlation_n1600", points);
        }
        if *n == 6400 {
            correlation_csv("fig9_11_nl_correlation_n6400", points);
        }
    }
    best_table(&eval, "Table 7 (NL model)", "table7_nl_best");
}

fn ns_campaign() {
    println!("\n== NS model: Figs 12-15 correlations + Table 9 best configurations ==");
    let eval = evaluate_campaign(&MeasurementPlan::ns());
    for (n, points) in &eval.correlations {
        if *n == 1600 {
            correlation_csv("fig12_13_ns_correlation_n1600", points);
        }
        if *n == 6400 {
            correlation_csv("fig14_15_ns_correlation_n6400", points);
        }
    }
    best_table(&eval, "Table 9 (NS model)", "table9_ns_best");
}

fn timings() {
    println!("\n== Section 4 timing claims: model construction / estimation speed ==");
    for (plan, label) in [
        (MeasurementPlan::basic(), "Basic (54 configs)"),
        (MeasurementPlan::nl(), "NL (30 configs)"),
    ] {
        let (fit_s, est_s) = timing_claims(&plan);
        println!(
            "{label}: model fit {:.2} ms (paper: 0.69/0.52 ms), 62-config estimation {:.2} ms (paper: 35/26.4 ms)",
            fit_s * 1e3,
            est_s * 1e3
        );
    }
}

fn ablations() {
    use etm_repro::experiments::{ablation_bcast, ablation_block_size, ablation_network};
    println!("\n== Ablations (extensions beyond the paper) ==");

    println!("-- network: 100base-TX vs 1000base-SX (installed but unused in the paper) --");
    let mut t = TextTable::new(vec!["config", "N", "fastE [s]", "gigabit [s]", "speedup"]);
    let mut csv = Vec::new();
    for (label, n, tf, tg) in ablation_network() {
        t.row(vec![
            label.clone(),
            n.to_string(),
            format!("{tf:.1}"),
            format!("{tg:.1}"),
            format!("{:.2}x", tf / tg),
        ]);
        csv.push(format!("{label},{n},{tf:.3},{tg:.3}"));
    }
    print!("{}", t.render());
    write_csv(
        "ablation_network",
        "config,n,fast_ethernet_s,gigabit_s",
        &csv,
    );

    println!("-- HPL block size NB --");
    let mut t = TextTable::new(vec!["N", "NB", "wall [s]"]);
    let mut csv = Vec::new();
    for (n, nb, w) in ablation_block_size() {
        t.row(vec![n.to_string(), nb.to_string(), format!("{w:.1}")]);
        csv.push(format!("{n},{nb},{w:.3}"));
    }
    print!("{}", t.render());
    write_csv("ablation_block_size", "n,nb,wall_s", &csv);

    println!("-- panel broadcast algorithm --");
    let mut t = TextTable::new(vec!["config", "N", "ring [s]", "binomial [s]"]);
    let mut csv = Vec::new();
    for (label, n, r, b) in ablation_bcast() {
        t.row(vec![
            label.clone(),
            n.to_string(),
            format!("{r:.1}"),
            format!("{b:.1}"),
        ]);
        csv.push(format!("{label},{n},{r:.3},{b:.3}"));
    }
    print!("{}", t.render());
    write_csv("ablation_bcast", "config,n,ring_s,binomial_s", &csv);

    println!("-- process-grid shape (P2 x 8, 2-D extension) --");
    let mut t = TextTable::new(vec!["grid", "N", "wall [s]"]);
    let mut csv = Vec::new();
    for (grid, n, w) in etm_repro::experiments::ablation_grid_shape() {
        t.row(vec![grid.clone(), n.to_string(), format!("{w:.1}")]);
        csv.push(format!("{grid},{n},{w:.3}"));
    }
    print!("{}", t.render());
    write_csv("ablation_grid_shape", "grid,n,wall_s", &csv);
}

fn models() {
    use etm_core::report::render_estimator;
    use etm_repro::experiments::estimator_for;
    println!("\n== Fitted model banks (coefficients k0..k11) ==");
    for plan in [MeasurementPlan::basic(), MeasurementPlan::nl()] {
        println!("-- {:?} campaign --", plan.kind);
        let est = estimator_for(&plan);
        print!("{}", render_estimator(&est));
    }
}

fn stream() {
    use etm_core::stream::StreamConfig;
    use etm_repro::stream::stream_experiment;
    println!("\n== Streaming ingestion: online §4 re-optimization over the Basic campaign ==");
    let spec = paper_cluster(CommLibProfile::mpich122());
    let cfg = StreamConfig {
        batch_size: 32,
        shuffle_seed: Some(2004),
        duplicate_every: 7,
        defer_every: 0,
        channel_cap: 4,
    };
    let run = stream_experiment(&MeasurementPlan::basic(), cfg, 0.02, 6400);
    let mut t = TextTable::new(vec![
        "gen",
        "search best",
        "tau_best [s]",
        "recommended",
        "tau_rec [s]",
        "switched",
        "degraded",
    ]);
    let mut csv = Vec::new();
    for d in &run.decisions {
        t.row(vec![
            d.generation.to_string(),
            d.best.config.label(&spec),
            format!("{:.1}", d.best.time),
            d.recommended.label(&spec),
            format!("{:.1}", d.recommended_time),
            if d.switched { "yes" } else { "" }.to_string(),
            if d.degraded { "yes" } else { "" }.to_string(),
        ]);
        csv.push(format!(
            "{},{},{:.4},{},{:.4},{},{}",
            d.generation,
            d.best.config.label(&spec),
            d.best.time,
            d.recommended.label(&spec),
            d.recommended_time,
            d.switched,
            d.degraded
        ));
    }
    print!("{}", t.render());
    println!(
        "{} batches, {} snapshots published, {} transient fit errors; \
         final bank bit-identical to one-shot fit: {}",
        run.report.batches, run.report.published, run.report.fit_errors, run.converged
    );
    println!(
        "online recommendation {} vs offline optimum {} (tau {:.1} s)",
        run.recommended.label(&spec),
        run.offline.config.label(&spec),
        run.offline.time
    );
    write_csv(
        "stream_decisions",
        "generation,best,tau_best,recommended,tau_recommended,switched,degraded",
        &csv,
    );
}

fn chaos() {
    use etm_repro::chaos::{chaos_suite, format_groups};
    println!("\n== Chaos: seeded fault plans vs the degradation ladder (NL campaign) ==");
    let rows = chaos_suite(&MeasurementPlan::nl(), 3200);
    let mut t = TextTable::new(vec![
        "scenario",
        "batches",
        "restarts",
        "stalls",
        "rejected",
        "quarantined",
        "fallback",
        "converged",
        "decisions",
        "untrusted recs",
        "ok",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        t.row(vec![
            r.scenario.to_string(),
            r.batches.to_string(),
            r.restarts.to_string(),
            r.stalls.to_string(),
            r.rejected.to_string(),
            format_groups(&r.quarantined),
            format_groups(&r.fallback),
            if r.converged { "yes" } else { "" }.to_string(),
            r.decisions.to_string(),
            r.untrusted_recommendations.to_string(),
            if r.ok { "yes" } else { "FAIL" }.to_string(),
        ]);
        csv.push(format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.scenario,
            r.recoverable,
            r.batches,
            r.restarts,
            r.stalls,
            r.published,
            r.rejected,
            r.corrupted,
            format_groups(&r.quarantined),
            format_groups(&r.fallback),
            r.converged,
            r.decisions,
            r.untrusted_recommendations,
            r.ok
        ));
    }
    print!("{}", t.render());
    let failed = rows.iter().filter(|r| !r.ok).count();
    println!(
        "{} scenarios, {} degraded-by-design, {} invariant failures",
        rows.len(),
        rows.iter().filter(|r| !r.recoverable).count(),
        failed
    );
    write_csv(
        "chaos_report",
        "scenario,recoverable,batches,restarts,stalls,published,rejected,corrupted,quarantined,fallback,converged,decisions,untrusted_recommendations,ok",
        &csv,
    );
    if failed > 0 {
        eprintln!("chaos invariant violated in {failed} scenario(s)");
        std::process::exit(1);
    }
}

fn shards() {
    use etm_core::stream::StreamConfig;
    use etm_repro::shards::shards_experiment;
    println!("\n== Sharded ingest: pool throughput + deterministic merge (Basic campaign) ==");
    // ETM_STREAM_PACE=<scale> switches the source to wall-clock pacing
    // (sim_time / scale); unset streams at full speed for throughput.
    let pace = std::env::var("ETM_STREAM_PACE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0);
    if let Some(scale) = pace {
        println!("wall-clock pacing enabled: time_scale {scale}");
    }
    let cfg = StreamConfig {
        batch_size: 32,
        shuffle_seed: Some(2004),
        duplicate_every: 7,
        defer_every: 0,
        channel_cap: 4,
    };
    let run = shards_experiment(&MeasurementPlan::basic(), cfg, &[1, 2, 4, 8], pace);
    let mut t = TextTable::new(vec![
        "width",
        "batches",
        "samples",
        "elapsed [ms]",
        "samples/s",
        "bit-identical",
        "quarantine",
        "decisions",
    ]);
    let mut csv = Vec::new();
    for r in &run.rows {
        t.row(vec![
            r.width.to_string(),
            r.batches.to_string(),
            r.samples.to_string(),
            format!("{:.2}", r.elapsed_s * 1e3),
            format!("{:.0}", r.samples_per_sec),
            if r.bit_identical { "yes" } else { "FAIL" }.to_string(),
            if r.quarantine_match { "yes" } else { "FAIL" }.to_string(),
            r.decisions.to_string(),
        ]);
        csv.push(format!(
            "{},{},{},{:.6},{:.1},{},{},{}",
            r.width,
            r.batches,
            r.samples,
            r.elapsed_s,
            r.samples_per_sec,
            r.bit_identical,
            r.quarantine_match,
            r.decisions
        ));
    }
    print!("{}", t.render());
    write_csv(
        "shards",
        "width,batches,samples,elapsed_s,samples_per_sec,bit_identical,quarantine_match,decisions",
        &csv,
    );
    if !run.all_identical() {
        eprintln!("sharded merge diverged from the single-consumer bank");
        std::process::exit(1);
    }
}

fn serve() {
    use etm_repro::serve::serve_experiment;
    println!("\n== Serving layer: compiled-snapshot predictions/sec + bit-identity gate ==");
    let report = serve_experiment(&MeasurementPlan::basic(), 0.2);
    println!(
        "{} configs x {} sizes = {} requests/sweep ({} estimable); bitwise mismatches: {}",
        report.configs, report.sizes, report.requests, report.estimable, report.mismatches
    );
    let mut t = TextTable::new(vec!["mode", "readers", "predictions/s", "vs scalar"]);
    let mut csv = Vec::new();
    let push =
        |t: &mut TextTable, csv: &mut Vec<String>, mode: &str, readers: usize, per_sec: f64| {
            t.row(vec![
                mode.to_string(),
                readers.to_string(),
                format!("{per_sec:.0}"),
                format!("{:.2}x", per_sec / report.scalar_per_sec),
            ]);
            csv.push(format!("{mode},{readers},{per_sec:.1}"));
        };
    push(&mut t, &mut csv, "scalar", 1, report.scalar_per_sec);
    push(&mut t, &mut csv, "compiled", 1, report.compiled_per_sec);
    push(&mut t, &mut csv, "batched", 1, report.batched_per_sec);
    for row in &report.thread_rows {
        push(&mut t, &mut csv, "memo", row.readers, row.per_sec);
    }
    print!("{}", t.render());
    println!(
        "batched/scalar speedup: {:.2}x (single-threaded)",
        report.speedup()
    );
    write_csv("serve_throughput", "mode,readers,predictions_per_sec", &csv);
    if !report.bit_identical() {
        eprintln!(
            "compiled serving layer diverged from the scalar model walk on {} request(s)",
            report.mismatches
        );
        std::process::exit(1);
    }
}

fn pareto() {
    use etm_repro::pareto::pareto_experiment;
    println!("\n== Anytime optimizer: pruned argmin audit + time x energy Pareto fronts ==");
    let spec = paper_cluster(CommLibProfile::mpich122());
    let report = pareto_experiment(&MeasurementPlan::basic());
    let mut t = TextTable::new(vec![
        "n",
        "argmin",
        "tau [s]",
        "front",
        "evaluated",
        "pruned",
        "cert hits",
        "identical",
    ]);
    let mut csv = Vec::new();
    for row in &report.rows {
        t.row(vec![
            row.n.to_string(),
            row.best
                .as_ref()
                .map_or("(none)".to_string(), |b| b.config.label(&spec)),
            row.best
                .as_ref()
                .map_or("-".to_string(), |b| format!("{:.1}", b.time)),
            row.front.len().to_string(),
            format!("{}/{}", row.evaluated, row.candidates),
            row.pruned.to_string(),
            row.certificate_hits.to_string(),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
        for (i, p) in row.front.iter().enumerate() {
            csv.push(format!(
                "{},{},{},{:.6},{:.3},{},{},{},{}",
                row.n,
                i,
                p.config.label(&spec),
                p.time,
                p.energy,
                row.candidates,
                row.evaluated,
                row.pruned,
                row.certificate_hits
            ));
        }
    }
    print!("{}", t.render());
    println!(
        "totals: {} evaluated / {} candidates, {} pruned across {} sizes",
        report.evaluated(),
        report.candidates(),
        report.pruned(),
        report.rows.len()
    );
    write_csv(
        "pareto",
        "n,point,config,time_s,energy_j,candidates,evaluated,pruned,certificate_hits",
        &csv,
    );
    if !report.ok() {
        eprintln!(
            "anytime optimizer gate breached: identical={} evaluated={} candidates={} pruned={}",
            report.identical(),
            report.evaluated(),
            report.candidates(),
            report.pruned()
        );
        std::process::exit(1);
    }
}

fn ab() {
    use etm_core::stream::StreamConfig;
    use etm_repro::stream::ab_compare;
    println!("\n== Backend A/B: poly_lsq vs binned_poly over one streamed Basic campaign ==");
    let spec = paper_cluster(CommLibProfile::mpich122());
    let cfg = StreamConfig {
        batch_size: 32,
        shuffle_seed: Some(2004),
        duplicate_every: 7,
        defer_every: 0,
        channel_cap: 4,
    };
    let report = ab_compare(&MeasurementPlan::basic(), cfg, 6400);
    let mut t = TextTable::new(vec![
        "config",
        "A est [s]",
        "B est [s]",
        "measured [s]",
        "divergence",
    ]);
    let mut csv = Vec::new();
    for r in &report.rows {
        t.row(vec![
            r.config.label(&spec),
            format!("{:.1}", r.estimate_a),
            format!("{:.1}", r.estimate_b),
            format!("{:.1}", r.measured),
            format!("{:+.4}", r.divergence()),
        ]);
        csv.push(format!(
            "{},{},{:.4},{:.4},{:.4},{:.5}",
            r.config.label(&spec),
            r.m1,
            r.estimate_a,
            r.estimate_b,
            r.measured,
            r.divergence()
        ));
    }
    print!("{}", t.render());
    let (err_a, err_b) = report.mean_abs_rel_errors();
    println!(
        "A={} (gen {}), B={} (gen {}); divergence mean {:.4} max {:.4}",
        report.backend_a,
        report.generations.0,
        report.backend_b,
        report.generations.1,
        report.mean_abs_divergence(),
        report.max_abs_divergence()
    );
    println!(
        "mean |rel error| vs measurement: A {:.4}, B {:.4}; campaign cost {:.0} simulated s (Table 3/6)",
        err_a, err_b, report.campaign_cost
    );
    write_csv(
        "ab_divergence",
        "config,m1,estimate_a,estimate_b,measured,divergence",
        &csv,
    );
}

fn baselines() {
    use etm_repro::experiments::baselines_comparison;
    println!("\n== Baselines: unmodified vs multiprocessing vs rewritten (weighted) HPL ==");
    let mut t = TextTable::new(vec![
        "N",
        "equal (M1=1) [s]",
        "best multiproc [s]",
        "best M1",
        "weighted rewrite [s]",
        "multiproc captures",
    ]);
    let mut csv = Vec::new();
    for (n, equal, multi, m1, weighted) in baselines_comparison() {
        let captured = if equal > weighted {
            100.0 * (equal - multi) / (equal - weighted)
        } else {
            100.0
        };
        t.row(vec![
            n.to_string(),
            format!("{equal:.1}"),
            format!("{multi:.1}"),
            m1.to_string(),
            format!("{weighted:.1}"),
            format!("{captured:.0}%"),
        ]);
        csv.push(format!("{n},{equal:.3},{multi:.3},{m1},{weighted:.3}"));
    }
    print!("{}", t.render());
    println!(
        "-> \"multiproc captures\" = share of the rewrite's improvement that\n\
         the no-rewrite multiprocessing approach recovers (the paper's pitch)."
    );
    write_csv(
        "baselines_comparison",
        "n,equal_s,best_multiproc_s,best_m1,weighted_s",
        &csv,
    );
}

fn loop_replay() {
    use etm_repro::loopback::{loop_suite, LOOP_CSV_HEADER};
    println!("\n== Closed loop: predict -> execute -> learn under execution faults ==");
    let suite = loop_suite(&MeasurementPlan::basic());
    let mut t = TextTable::new(vec![
        "scenario",
        "tau",
        "penalty",
        "exec",
        "fail",
        "held",
        "fallback",
        "switch",
        "trip",
        "regret [s]",
        "oracle [s]",
        "ok",
    ]);
    let mut csv = Vec::new();
    for r in &suite.rows {
        t.row(vec![
            r.scenario.clone(),
            format!("{:.2}", r.tau),
            format!("{:.2}", r.penalty),
            r.executed.to_string(),
            r.failures.to_string(),
            r.held_out.to_string(),
            r.fallbacks.to_string(),
            r.switches.to_string(),
            r.tripped.to_string(),
            format!("{:.1}", r.regret_seconds),
            format!("{:.1}", r.oracle_seconds),
            if r.ok { "yes" } else { "FAIL" }.to_string(),
        ]);
        csv.push(r.csv());
    }
    print!("{}", t.render());
    let failed = suite.rows.iter().filter(|r| !r.ok).count();
    println!(
        "{} rows ({} scenarios + {} sweep points), {} invariant failures",
        suite.rows.len(),
        suite.rows.iter().filter(|r| r.scenario != "sweep").count(),
        suite.rows.iter().filter(|r| r.scenario == "sweep").count(),
        failed
    );
    write_csv("loop_regret", LOOP_CSV_HEADER, &csv);
    if failed > 0 {
        eprintln!("closed-loop invariant violated in {failed} row(s)");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod usage_tests {
    use super::{EXPERIMENTS, USAGE};

    /// Every name the dispatch table accepts, plus `all`.
    fn known_experiments() -> Vec<&'static str> {
        let mut names: Vec<&'static str> = EXPERIMENTS
            .iter()
            .flat_map(|(aliases, _)| aliases.iter().copied())
            .collect();
        names.push("all");
        names
    }

    #[test]
    fn usage_matches_dispatch_table() {
        let usage: Vec<&str> = USAGE.split_whitespace().collect();
        assert_eq!(
            usage,
            known_experiments(),
            "USAGE and the EXPERIMENTS dispatch table have drifted"
        );
    }

    #[test]
    fn experiment_names_are_unique() {
        let mut names = known_experiments();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate experiment name");
        assert_eq!(before, EXPERIMENTS.len() + 4, "three aliased runners + all");
    }
}
