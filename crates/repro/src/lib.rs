//! # etm-repro — experiment regeneration harness
//!
//! One module per table/figure of the paper; the `repro` binary drives
//! them (`repro all` regenerates everything into `results/`). Each
//! experiment is a library function returning structured rows so the
//! Criterion benches in `etm-bench` can measure the same code paths.
//! [`stream`] goes beyond the paper: it replays the same campaigns as
//! online measurement streams with §4 re-optimization and A/B-compares
//! fitting backends on pinned snapshots. [`chaos`] injects seeded
//! faults into those streams and scores the degradation ladder's
//! invariants. [`serve`] audits the compiled serving layer for
//! bit-identity with the interpreted model walk and measures
//! predictions/sec scalar vs batched vs memoized multi-reader.
//! [`pareto`] audits the anytime pruned optimizer against the
//! exhaustive §4 sweep and emits the time×energy Pareto front.
//! [`loopback`] closes the predict → execute → learn loop: it executes
//! each recommendation on the discrete-event substrate under seeded
//! execution-side fault plans and scores regret, breaker exactness,
//! and the fault-free bit-identity baseline.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod correlate;
pub mod experiments;
pub mod loopback;
pub mod pareto;
pub mod serve;
pub mod shards;
pub mod stream;
pub mod table;

/// Output directory for CSV artifacts, relative to the invocation cwd.
pub const RESULTS_DIR: &str = "results";

/// Writes `name.csv` under [`RESULTS_DIR`] with a header row.
///
/// # Panics
/// Panics on I/O failure (the harness is a batch tool; failing loudly is
/// correct).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = std::path::Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());
}
