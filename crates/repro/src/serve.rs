//! The serving-layer experiment: predictions/sec of the compiled
//! snapshot, gated on bit-identity with the interpreted model walk.
//!
//! [`serve_experiment`] pins one snapshot of a fitted campaign engine
//! and measures three ways of serving the §4 evaluation grid
//! (62 configurations × the plan's evaluation sizes):
//!
//! * **scalar** — the interpreted `ModelBank` walk
//!   ([`EngineSnapshot::estimate`]), one request at a time;
//! * **batched** — [`EngineSnapshot::estimate_batch`], the whole grid
//!   through the compiled coefficient tables per sweep;
//! * **memo** — 1/2/4/8 reader threads hammering a prefetched
//!   [`MemoSurface`] in independently shuffled orders.
//!
//! Before any clock starts, every request is served through all three
//! paths and compared *bitwise* (errors compared structurally): a
//! single mismatch fails the experiment — speed bought by drifting off
//! the paper's §3 math would be a bug, not a feature.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use etm_cluster::Configuration;
use etm_core::compiled::MemoSurface;
use etm_core::engine::EngineSnapshot;
use etm_core::plan::MeasurementPlan;
use etm_support::rng::Rng64;

use crate::experiments::engine_for;
use crate::stream::evaluation_space;

/// Throughput of one reader-thread count against the memo surface.
#[derive(Clone, Copy, Debug)]
pub struct ThreadRow {
    /// Concurrent reader threads.
    pub readers: usize,
    /// Aggregate memoized predictions per second across all readers.
    pub per_sec: f64,
}

/// Outcome of [`serve_experiment`]: the bit-identity audit and the
/// measured serving rates.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Configurations on the evaluation grid.
    pub configs: usize,
    /// Problem sizes per configuration.
    pub sizes: usize,
    /// Total requests per sweep (`configs × sizes`).
    pub requests: usize,
    /// Requests the model can estimate (the rest error identically on
    /// every path).
    pub estimable: usize,
    /// Requests where any path disagreed with the interpreted walk.
    pub mismatches: usize,
    /// Interpreted scalar predictions per second, single-threaded.
    pub scalar_per_sec: f64,
    /// Compiled scalar (per-call, no batching) predictions per second,
    /// single-threaded.
    pub compiled_per_sec: f64,
    /// Batched compiled predictions per second, single-threaded.
    pub batched_per_sec: f64,
    /// Memoized-surface throughput per reader-thread count.
    pub thread_rows: Vec<ThreadRow>,
}

impl ServeReport {
    /// Single-threaded speedup of the batched path over the scalar
    /// walk.
    pub fn speedup(&self) -> f64 {
        self.batched_per_sec / self.scalar_per_sec
    }

    /// Whether every request agreed bit-for-bit across all paths.
    pub fn bit_identical(&self) -> bool {
        self.mismatches == 0
    }
}

/// Runs each timed section for at least `window_s` wall-clock seconds.
fn throughput(window_s: f64, mut sweep: impl FnMut() -> usize) -> f64 {
    // One untimed sweep warms caches and pays lazy initialization.
    sweep();
    let start = Instant::now();
    let mut served = 0usize;
    loop {
        served += sweep();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= window_s {
            return served as f64 / elapsed;
        }
    }
}

/// Aggregate throughput of `readers` threads reading a prefilled memo
/// surface in independently shuffled orders for `window_s` seconds.
fn memo_throughput(
    snapshot: &Arc<EngineSnapshot>,
    configs: &[Configuration],
    ns: &[usize],
    readers: usize,
    window_s: f64,
) -> f64 {
    let surface = Arc::new(MemoSurface::new(
        Arc::clone(snapshot),
        configs.to_vec(),
        ns.to_vec(),
    ));
    surface.prefill();
    let cells: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|ci| (0..ns.len()).map(move |ni| (ci, ni)))
        .collect();
    let served = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for reader in 0..readers {
            let surface = Arc::clone(&surface);
            let cells = &cells;
            let served = &served;
            scope.spawn(move || {
                // Each reader walks its own fixed shuffled order —
                // random access, but the shuffle cost stays outside
                // the timed loop.
                let mut order: Vec<usize> = (0..cells.len()).collect();
                let mut rng = Rng64::seed_from_u64(0x5e21_0000 + reader as u64);
                rng.shuffle(&mut order);
                let mut local = 0usize;
                while start.elapsed().as_secs_f64() < window_s {
                    for &i in &order {
                        let (ci, ni) = cells[i];
                        let _ = std::hint::black_box(surface.estimate(ci, ni));
                    }
                    local += order.len();
                }
                served.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    served.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// Audits bit-identity of the scalar, compiled-scalar, and batched
/// paths on one pinned snapshot and measures predictions/sec of each
/// serving mode; each timed section runs for about `window_s` seconds.
pub fn serve_experiment(plan: &MeasurementPlan, window_s: f64) -> ServeReport {
    let engine = engine_for(plan);
    let snapshot = engine.snapshot();
    let configs = evaluation_space().enumerate();
    let ns = plan.evaluation_ns.clone();
    let requests: Vec<(Configuration, usize)> = configs
        .iter()
        .flat_map(|c| ns.iter().map(move |&n| (c.clone(), n)))
        .collect();

    // The gate: every request through all three paths, compared
    // bitwise before anything is timed.
    let batched = snapshot.estimate_batch(&requests);
    let mut estimable = 0usize;
    let mut mismatches = 0usize;
    for ((config, n), b) in requests.iter().zip(&batched) {
        let interpreted = snapshot.estimate(config, *n);
        let compiled = snapshot.compiled().estimate(config, *n);
        let agree = match (&interpreted, &compiled, b) {
            (Ok(x), Ok(y), Ok(z)) => {
                estimable += 1;
                x.to_bits() == y.to_bits() && y.to_bits() == z.to_bits()
            }
            _ => interpreted == compiled && compiled == *b,
        };
        if !agree {
            mismatches += 1;
        }
    }

    let scalar_per_sec = throughput(window_s, || {
        for (config, n) in &requests {
            let _ = std::hint::black_box(snapshot.estimate(config, *n));
        }
        requests.len()
    });
    let compiled_per_sec = throughput(window_s, || {
        let compiled = snapshot.compiled();
        for (config, n) in &requests {
            let _ = std::hint::black_box(compiled.estimate(config, *n));
        }
        requests.len()
    });
    let batched_per_sec = throughput(window_s, || {
        std::hint::black_box(snapshot.estimate_batch(&requests)).len()
    });
    let thread_rows = [1usize, 2, 4, 8]
        .iter()
        .map(|&readers| ThreadRow {
            readers,
            per_sec: memo_throughput(&snapshot, &configs, &ns, readers, window_s),
        })
        .collect();

    ServeReport {
        configs: configs.len(),
        sizes: ns.len(),
        requests: requests.len(),
        estimable,
        mismatches,
        scalar_per_sec,
        compiled_per_sec,
        batched_per_sec,
        thread_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short window keeps the test cheap; the audit itself is
    /// window-independent.
    #[test]
    fn serve_experiment_is_bit_identical_on_the_paper_grid() {
        let report = serve_experiment(&MeasurementPlan::basic(), 0.02);
        assert_eq!(report.configs, 62);
        assert!(report.sizes > 0);
        assert_eq!(report.requests, report.configs * report.sizes);
        assert!(report.estimable > 0, "the fitted grid must be estimable");
        assert!(report.bit_identical(), "{} mismatches", report.mismatches);
        assert!(report.scalar_per_sec > 0.0);
        assert!(report.batched_per_sec > 0.0);
        assert_eq!(report.thread_rows.len(), 4);
        for row in &report.thread_rows {
            assert!(row.per_sec > 0.0, "readers={}", row.readers);
        }
    }
}
