//! The optimizer experiment: anytime branch-and-bound vs the batched
//! exhaustive selection, plus the time×energy Pareto front.
//!
//! [`pareto_experiment`] pins one snapshot of a fitted campaign engine
//! and, for every evaluation size of the plan, runs
//! [`anytime_search`] twice over the §4 evaluation grid:
//!
//! * a **time-only** run, warm-started from the previous size's
//!   optimum, gated *bit-identical* to [`best_config`] — the pruned
//!   search must return the exact argmin while evaluating strictly
//!   fewer candidates than the exhaustive sweep;
//! * an **energy-priced** run producing the deterministic time×energy
//!   Pareto front under the paper cluster's per-PE power ratings.
//!
//! The pruning counters come from the time-only run: its bound logic
//! (incumbent comparison) is the strongest, so it is the honest
//! yardstick for "how much work did pruning save". The front comes
//! from the priced run, whose pruning is restricted to
//! archive-dominated subtrees and therefore can never drop a
//! non-dominated point.

use etm_cluster::commlib::CommLibProfile;
use etm_cluster::energy::EnergyModel;
use etm_cluster::spec::paper_cluster;
use etm_core::plan::MeasurementPlan;
use etm_search::{anytime_search, best_config, AnytimeOptions, ParetoPoint, SearchResult};

use crate::experiments::engine_for;
use crate::stream::evaluation_space;

/// Outcome of one evaluation size: the bit-identity audit of the
/// pruned search against the exhaustive sweep, its pruning counters,
/// and the energy-priced Pareto front.
#[derive(Clone, Debug)]
pub struct ParetoRow {
    /// Problem size.
    pub n: usize,
    /// The exhaustive argmin this size was audited against.
    pub best: Option<SearchResult>,
    /// Whether the pruned search returned the same configuration with
    /// the same time bits as [`best_config`].
    pub identical: bool,
    /// Whether the time-only run visited the whole space (it always
    /// should — no budget is set).
    pub exhausted: bool,
    /// Configurations in the search space.
    pub candidates: usize,
    /// Candidates the time-only run actually estimated.
    pub evaluated: usize,
    /// Candidates discarded by bounding without an estimate.
    pub pruned: usize,
    /// Bound scans short-circuited by a monotonicity certificate.
    pub certificate_hits: usize,
    /// The time×energy Pareto front from the energy-priced run,
    /// fastest point first.
    pub front: Vec<ParetoPoint>,
}

/// Outcome of [`pareto_experiment`]: one [`ParetoRow`] per evaluation
/// size of the plan.
#[derive(Clone, Debug)]
pub struct ParetoReport {
    /// Per-size rows, in the plan's evaluation order.
    pub rows: Vec<ParetoRow>,
}

impl ParetoReport {
    /// Whether every size's pruned argmin matched the exhaustive sweep
    /// bit-for-bit.
    pub fn identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical && r.exhausted)
    }

    /// Total candidates across all sizes.
    pub fn candidates(&self) -> usize {
        self.rows.iter().map(|r| r.candidates).sum()
    }

    /// Total candidates estimated across all sizes.
    pub fn evaluated(&self) -> usize {
        self.rows.iter().map(|r| r.evaluated).sum()
    }

    /// Total candidates pruned across all sizes.
    pub fn pruned(&self) -> usize {
        self.rows.iter().map(|r| r.pruned).sum()
    }

    /// The experiment's gate: bit-identity everywhere, strictly fewer
    /// evaluations than the exhaustive sweep, and at least one pruned
    /// subtree to prove the bounds are live.
    pub fn ok(&self) -> bool {
        self.identical() && self.evaluated() < self.candidates() && self.pruned() > 0
    }
}

/// Runs the anytime optimizer over the plan's evaluation sizes on the
/// §4 grid, warm-starting each size from the previous optimum, and
/// audits it against [`best_config`]. See the [module docs](self).
pub fn pareto_experiment(plan: &MeasurementPlan) -> ParetoReport {
    let engine = engine_for(plan);
    let snapshot = engine.snapshot();
    let space = evaluation_space();
    let energy = EnergyModel::from_spec(&paper_cluster(CommLibProfile::mpich122()));
    let mut warm: Option<etm_cluster::Configuration> = None;
    let mut rows = Vec::with_capacity(plan.evaluation_ns.len());
    for &n in &plan.evaluation_ns {
        let brute = best_config(&snapshot, &space, n);
        let timed = anytime_search(
            &snapshot,
            &space,
            n,
            &AnytimeOptions {
                warm_start: warm.clone(),
                ..AnytimeOptions::default()
            },
        );
        let identical = match (&brute, &timed.best) {
            (None, None) => true,
            (Some(b), Some(a)) => b.config == a.config && b.time.to_bits() == a.time.to_bits(),
            _ => false,
        };
        let priced = anytime_search(
            &snapshot,
            &space,
            n,
            &AnytimeOptions {
                warm_start: warm.clone(),
                energy: Some(energy.clone()),
                ..AnytimeOptions::default()
            },
        );
        warm = timed.best.as_ref().map(|b| b.config.clone());
        rows.push(ParetoRow {
            n,
            best: brute,
            identical,
            exhausted: timed.exhausted,
            candidates: timed.candidates,
            evaluated: timed.evaluated,
            pruned: timed.pruned,
            certificate_hits: timed.certificate_hits,
            front: priced.front,
        });
    }
    ParetoReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_experiment_passes_its_own_gate_on_the_paper_grid() {
        let plan = MeasurementPlan::basic();
        let report = pareto_experiment(&plan);
        assert_eq!(report.rows.len(), plan.evaluation_ns.len());
        assert!(report.ok(), "gate breached: {report:?}");
        assert!(report.pruned() > 0);
        assert!(report.evaluated() < report.candidates());
        for row in &report.rows {
            assert_eq!(row.candidates, 62, "the §4 grid has 62 configurations");
            assert!(!row.front.is_empty(), "n={}: empty front", row.n);
            // The front is sorted fastest-first, and its fastest point
            // is exactly the time argmin the audit confirmed.
            let best = row.best.as_ref().expect("the fitted grid is estimable");
            assert_eq!(row.front[0].time.to_bits(), best.time.to_bits());
            assert_eq!(row.front[0].config, best.config);
            for pair in row.front.windows(2) {
                // Bit-equal (time, energy) duplicates are all kept;
                // otherwise the front strictly ascends in time and
                // strictly descends in energy.
                if pair[0].time == pair[1].time {
                    assert_eq!(pair[0].energy.to_bits(), pair[1].energy.to_bits());
                } else {
                    assert!(pair[0].time < pair[1].time, "front must ascend in time");
                    assert!(
                        pair[0].energy > pair[1].energy,
                        "front must descend in energy"
                    );
                }
            }
        }
    }
}
