//! Sharded streaming ingest: throughput and bit-identity of the
//! [`ShardedConsumer`] pool versus the single-consumer baseline.
//!
//! [`shards_experiment`] replays one construction campaign through a
//! worker pool at several widths, times the drain, and checks the
//! tentpole acceptance criterion: the merged [`EngineSnapshot`]
//! (bank, quarantine set, fallback set) must be bit-identical to what
//! the single consumer publishes, at every width. An
//! [`OnlineOptimizer`] polls the merged snapshot slot through
//! [`OnlineOptimizer::observe_fresh`], the generation-deduplicated
//! entry point made for polled slots.
//!
//! Pacing: by default the source emits as fast as the pool can drain
//! (a throughput measurement). When `pace` is set — the `repro`
//! binary wires it to the `ETM_STREAM_PACE` environment variable —
//! the source is wall-clock paced via
//! [`TrialSource::spawn_paced`], honoring `TrialBatch::sim_time`
//! scaled by the given factor, so the replay arrives at (scaled)
//! campaign cadence. CI leaves the gate unset and stays fast.

use std::time::{Duration, Instant};

use etm_core::backend::{ModelBackend, PolyLsqBackend};
use etm_core::engine::{Engine, EngineSnapshot, QuarantinePolicy};
use etm_core::plan::{MeasurementPlan, PlanKind};
use etm_core::stream::{
    consume_with, replay, trials_of_db, ConsumeOptions, ShardedConsumer, StreamConfig, TrialBatch,
    TrialSource,
};
use etm_core::MeasurementDb;
use etm_search::OnlineOptimizer;

use crate::experiments::campaign_db;
use crate::stream::{banks_bit_equal, evaluation_space};

/// One pool width's drain of the campaign stream.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Pool width (worker count).
    pub width: usize,
    /// Batches pulled off the source channel.
    pub batches: usize,
    /// Trials delivered (duplicates included).
    pub samples: usize,
    /// Wall seconds to drain and merge.
    pub elapsed_s: f64,
    /// Ingest throughput, trials per wall second.
    pub samples_per_sec: f64,
    /// Whether the merged bank (and fallback bookkeeping) is
    /// bit-identical to the single consumer's — the acceptance
    /// criterion.
    pub bit_identical: bool,
    /// Whether the union quarantine set equals the single consumer's.
    pub quarantine_match: bool,
    /// Decisions the slot-polling optimizer logged (deduplicated by
    /// generation; polling more often must not inflate this).
    pub decisions: usize,
}

/// The sharded-ingest experiment over one campaign.
#[derive(Clone, Debug)]
pub struct ShardsRun {
    /// Which campaign was streamed.
    pub plan: PlanKind,
    /// One row per pool width, in the order requested.
    pub rows: Vec<ShardRow>,
    /// The wall-clock pacing factor in effect, if any.
    pub pace: Option<f64>,
}

impl ShardsRun {
    /// Whether every width met the bit-identity criterion.
    pub fn all_identical(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.bit_identical && r.quarantine_match)
    }
}

fn paper_backend() -> Box<dyn ModelBackend> {
    Box::new(PolyLsqBackend::paper())
}

/// Consume options whose stall detector out-waits the paced schedule.
///
/// `sim_time` is the cumulative campaign wall clock, so at small
/// `time_scale` the gap between consecutive batches can dwarf the
/// default 30 s stall timeout — a healthy real-time replay would be
/// declared dead mid-campaign. Stretch the timeout past twice the
/// largest paced gap (never below the default, so the unpaced fast
/// path keeps its usual detection latency).
fn paced_options(batches: &[TrialBatch], pace: Option<f64>) -> ConsumeOptions {
    let mut opts = ConsumeOptions::default();
    if let Some(scale) = pace {
        let mut last = 0.0f64;
        let mut max_gap_s = 0.0f64;
        for b in batches {
            max_gap_s = max_gap_s.max((b.sim_time - last) / scale);
            last = b.sim_time;
        }
        let floor = opts.stall_timeout.map_or(30.0, |d| d.as_secs_f64());
        opts.stall_timeout = Some(Duration::from_secs_f64(
            max_gap_s.mul_add(2.0, 1.0).max(floor),
        ));
    }
    opts
}

/// A stale copy of the campaign (`ta` off by 10 %), so the stream
/// actually rewrites every group instead of no-op upserting.
fn stale_seed(db: &MeasurementDb) -> MeasurementDb {
    let mut seed = MeasurementDb::new();
    for key in db.keys() {
        for s in db.samples(key) {
            let mut stale = *s;
            stale.ta *= 1.1;
            seed.upsert(*key, stale);
        }
    }
    seed
}

/// Streams `plan`'s construction campaign through a [`ShardedConsumer`]
/// at each of `widths`, timing each drain and checking the merged
/// snapshot bit-for-bit against the single-consumer baseline.
///
/// `pace` — `Some(scale)` paces the source on the wall clock
/// (`sim_time / scale`); `None` streams at full speed.
///
/// # Panics
/// Panics when the campaign cannot seed or drain — impossible for a
/// completed construction campaign.
pub fn shards_experiment(
    plan: &MeasurementPlan,
    cfg: StreamConfig,
    widths: &[usize],
    pace: Option<f64>,
) -> ShardsRun {
    let db = campaign_db(plan);
    let trials = trials_of_db(&db);
    let seed = stale_seed(&db);
    let batches = replay(&trials, &cfg);
    let samples: usize = batches.iter().map(|b| b.trials.len()).sum();
    let opts = paced_options(&batches, pace);

    // Single-consumer baseline: the bank every pool width must match.
    let engine = Engine::new(paper_backend(), seed.clone(), None).expect("stale campaign fits");
    let source = spawn(trials.clone(), cfg, pace);
    consume_with(&engine, source.receiver(), opts, |_, _| {}).expect("single consumer drains");
    source.join();
    let single = engine.snapshot();

    let rows = widths
        .iter()
        .map(|&width| {
            let pool = ShardedConsumer::new(
                width,
                paper_backend,
                seed.clone(),
                None,
                QuarantinePolicy::default(),
                opts,
            )
            .expect("sharded seed fits");
            // Poll the merged slot like an online controller would: the
            // generation dedup keeps repeated polls out of the log.
            let mut optimizer = OnlineOptimizer::new(evaluation_space(), 6400, 0.02)
                .expect("valid optimizer inputs");
            optimizer.observe_fresh(&pool.snapshot());
            optimizer.observe_fresh(&pool.snapshot()); // same generation: no-op
            let source = spawn(trials.clone(), cfg, pace);
            let start = Instant::now();
            let report = pool.consume(source.receiver()).expect("pool drains");
            let elapsed_s = start.elapsed().as_secs_f64();
            source.join();
            optimizer.observe_fresh(&pool.snapshot());
            optimizer.observe_fresh(&pool.snapshot()); // still deduplicated
            let merged = pool.snapshot();
            ShardRow {
                width,
                batches: report.batches,
                samples,
                elapsed_s,
                samples_per_sec: samples as f64 / elapsed_s.max(1e-9),
                bit_identical: snapshots_bit_equal(&merged, &single),
                quarantine_match: merged.health().quarantined == single.health().quarantined,
                decisions: optimizer.log().len(),
            }
        })
        .collect();
    ShardsRun {
        plan: plan.kind,
        rows,
        pace,
    }
}

fn spawn(
    trials: Vec<(etm_core::SampleKey, etm_core::Sample)>,
    cfg: StreamConfig,
    pace: Option<f64>,
) -> TrialSource {
    match pace {
        // The scale comes straight from the CLI; the harness fails
        // loudly on a rejected factor like it does on I/O errors.
        Some(scale) => TrialSource::spawn_paced(trials, cfg, scale)
            .unwrap_or_else(|e| panic!("sharded replay pacing: {e}")),
        None => TrialSource::spawn(trials, cfg),
    }
}

fn snapshots_bit_equal(a: &EngineSnapshot, b: &EngineSnapshot) -> bool {
    banks_bit_equal(a.bank(), b.bank())
        && a.health().composed_fallback == b.health().composed_fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `repro shards` acceptance at test scale: widths 1, 2, and 4
    /// all bit-match the single consumer on the Basic campaign.
    #[test]
    fn shards_experiment_is_bit_identical_at_every_width() {
        let cfg = StreamConfig {
            batch_size: 32,
            shuffle_seed: Some(2004),
            duplicate_every: 7,
            defer_every: 0,
            channel_cap: 4,
        };
        let run = shards_experiment(&MeasurementPlan::basic(), cfg, &[1, 2, 4], None);
        assert_eq!(run.rows.len(), 3);
        assert!(run.all_identical(), "{:?}", run.rows);
        for row in &run.rows {
            assert!(row.batches > 0);
            assert!(row.samples_per_sec > 0.0);
            // Two distinct generations polled (seed, post-merge), with
            // duplicate polls deduplicated.
            assert_eq!(row.decisions, 2);
        }
    }

    /// Pacing must stretch the stall detector past the schedule's real
    /// gaps: a near-real-time replay of a campaign whose batches sit
    /// minutes apart on the simulated clock is slow, not stalled
    /// (`ETM_STREAM_PACE=1` used to trip `SourceStalled` at 30 s).
    #[test]
    fn paced_stall_timeout_outwaits_the_schedule() {
        let cfg = StreamConfig::default();
        let trials = trials_of_db(&campaign_db(&MeasurementPlan::basic()));
        let batches = replay(&trials, &cfg);
        let default = ConsumeOptions::default()
            .stall_timeout
            .expect("default detects stalls");
        // Unpaced: the fast path keeps its usual detection latency.
        assert_eq!(paced_options(&batches, None).stall_timeout, Some(default));
        // Real-time pacing: the timeout out-waits every inter-batch gap.
        let paced = paced_options(&batches, Some(1.0))
            .stall_timeout
            .expect("paced runs still detect stalls");
        let mut last = 0.0;
        for b in &batches {
            assert!(
                paced.as_secs_f64() > b.sim_time - last,
                "timeout {paced:?} must exceed the {}s gap before batch {}",
                b.sim_time - last,
                b.seq
            );
            last = b.sim_time;
        }
        // A huge scale collapses the schedule: floored at the default.
        assert_eq!(
            paced_options(&batches, Some(1e12)).stall_timeout,
            Some(default)
        );
    }

    /// The paced path delivers the same bits, just slower — with a huge
    /// scale factor so the test stays fast.
    #[test]
    fn paced_shards_run_matches_too() {
        let cfg = StreamConfig {
            batch_size: 64,
            shuffle_seed: Some(7),
            ..StreamConfig::default()
        };
        let run = shards_experiment(&MeasurementPlan::basic(), cfg, &[2], Some(1e9));
        assert!(run.all_identical(), "{:?}", run.rows);
        assert_eq!(run.pace, Some(1e9));
    }
}
