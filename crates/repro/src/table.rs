//! Minimal aligned text-table rendering for experiment output.

/// A simple text table: header + rows, rendered with column alignment.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned columns separated by two spaces.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["N", "time"]);
        t.row(vec!["400", "3.9"]);
        t.row(vec!["9600", "341.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('N'));
        assert!(lines[2].ends_with("3.9"));
        assert!(lines[3].ends_with("341.1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
