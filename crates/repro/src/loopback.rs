//! Closed-loop replays: the `repro loop` harness behind
//! `results/loop_regret.csv`.
//!
//! Each scenario stale-seeds an [`Engine`] from the Basic construction
//! campaign (`Ta` off by 10 %, as in the streaming experiments), then
//! closes the predict → execute → learn loop with
//! [`run_closed_loop`]: every [`OnlineOptimizer`] recommendation is
//! executed on the discrete-event substrate through a
//! [`StepExecutor`], and the measured samples stream back through
//! `Engine::ingest_batch`. A seeded, pure-literal
//! [`ExecutionFaultPlan`] injects node crashes, stragglers, transient
//! cluster-wide degradation windows, and lost / NaN measurements
//! mid-run.
//!
//! Scored invariants (`ok` per row; the `repro loop` binary exits
//! non-zero on any breach):
//!
//! * the loop completes every step — no panic, no deadlock;
//! * zero untrusted recommendations (the optimizer must never
//!   recommend a quarantined, donor-less configuration);
//! * the breaker opens *exactly* on the injected failing/flapping
//!   configurations: every configuration the fault log charges
//!   `threshold` failures trips, and every tripped configuration is
//!   backed by enough failure + flap strikes;
//! * cumulative regret vs the clean-trace oracle stays within the
//!   pinned bound ([`REGRET_BOUND`] × the oracle's total runtime);
//! * the fault-free scenario is the zero-regret baseline: its final
//!   bank is bit-identical to a one-shot fit of the same measurements
//!   and its decision log equals the offline optimizer's trace over
//!   the recorded snapshots.
//!
//! *Regret* is execution-time regret under ground truth: per step, the
//! clean-simulation runtime of the configuration the faulty loop ran
//! (held-out steps keep the previously deployed configuration) minus
//! the runtime of the configuration the fault-free loop ran, clamped
//! at zero and summed.

use std::collections::BTreeMap;

use etm_cluster::spec::paper_cluster;
use etm_cluster::{ClusterSpec, CommLibProfile, Configuration, KindId, KindUse};
use etm_core::backend::{ModelBackend, PolyLsqBackend};
use etm_core::engine::Engine;
use etm_core::plan::MeasurementPlan;
use etm_core::{
    BreakerPolicy, CircuitBreaker, ConfigKey, ExecutionFaultPlan, MeasurementDb, RetryPolicy,
    StepExecutor,
};
use etm_hpl::{simulate_hpl, HplParams};
use etm_search::{run_closed_loop, LoopReport, OnlineOptimizer};

use crate::experiments::{campaign_db, NB};
use crate::stream::{banks_bit_equal, evaluation_space};

/// Problem size the loop re-optimizes and executes at.
pub const LOOP_N: usize = 1600;
/// Closed-loop steps per scenario.
pub const LOOP_STEPS: u64 = 12;
/// Hysteresis τ for the scenario table (the sweep varies it).
pub const LOOP_TAU: f64 = 0.05;
/// Fallback penalty for the scenario table (the sweep varies it).
pub const LOOP_PENALTY: f64 = 1.25;
/// Pinned regret bound: cumulative regret must stay below this
/// fraction of the clean-trace oracle's total execution time.
pub const REGRET_BOUND: f64 = 0.75;

/// Breaker policy for the replays: two strikes in a window as long as
/// the run, probe after four held-out steps.
fn breaker_policy() -> BreakerPolicy {
    BreakerPolicy {
        window: LOOP_STEPS,
        threshold: 2,
        cooldown: 4,
        flap_window: 2,
    }
}

/// The seeded fault scenarios `repro loop` replays — every plan a pure
/// literal, so the suite is reproducible by construction.
pub fn loop_scenarios() -> Vec<(&'static str, ExecutionFaultPlan)> {
    let clean = ExecutionFaultPlan::default();
    vec![
        ("clean", clean),
        (
            "crash-retry",
            ExecutionFaultPlan {
                seed: 11,
                crash_every: 5,
                ..clean
            },
        ),
        (
            "crash-window",
            ExecutionFaultPlan {
                seed: 12,
                crash_from: Some(3),
                crash_until: Some(7),
                ..clean
            },
        ),
        (
            "straggler",
            ExecutionFaultPlan {
                seed: 13,
                straggle_every: 3,
                straggle_factor: 3.0,
                ..clean
            },
        ),
        (
            "degrade-window",
            ExecutionFaultPlan {
                seed: 14,
                degrade_from: Some(2),
                degrade_until: Some(6),
                degrade_factor: 6.0,
                ..clean
            },
        ),
        (
            "lost-measurement",
            ExecutionFaultPlan {
                seed: 15,
                lose_every: 4,
                ..clean
            },
        ),
        (
            "nan-poison",
            ExecutionFaultPlan {
                seed: 16,
                nan_every: 3,
                ..clean
            },
        ),
        (
            "compound",
            ExecutionFaultPlan {
                seed: 17,
                crash_every: 7,
                straggle_every: 4,
                straggle_factor: 2.5,
                degrade_from: Some(8),
                degrade_until: Some(10),
                degrade_factor: 4.0,
                lose_every: 9,
                nan_every: 5,
                ..clean
            },
        ),
    ]
}

/// One scored row of the loop suite (a scenario or a sweep point).
#[derive(Clone, Debug)]
pub struct LoopRow {
    /// Scenario name (`sweep` rows share the compound plan).
    pub scenario: String,
    /// Hysteresis τ the optimizer ran with.
    pub tau: f64,
    /// Fallback penalty the optimizer ran with.
    pub penalty: f64,
    /// Steps the loop completed (must equal [`LOOP_STEPS`]).
    pub steps: usize,
    /// Steps that executed a configuration.
    pub executed: usize,
    /// Terminal execution failures.
    pub failures: usize,
    /// Steps held out entirely.
    pub held_out: usize,
    /// Steps degraded to the last healthy configuration.
    pub fallbacks: usize,
    /// Recommendation switches.
    pub switches: usize,
    /// Configurations whose breaker tripped.
    pub tripped: usize,
    /// Untrusted recommendations observed (must be zero).
    pub untrusted: usize,
    /// Cumulative execution-time regret vs the clean-trace oracle [s].
    pub regret_seconds: f64,
    /// The oracle's total execution time over the run [s].
    pub oracle_seconds: f64,
    /// Breaker trips match the injected-fault oracle exactly.
    pub breaker_exact: bool,
    /// Fault-free only: final bank bit-identical to the one-shot fit.
    pub converged: bool,
    /// Fault-free only: decision log equals the offline trace.
    pub trace_matches: bool,
    /// Every invariant for this row held.
    pub ok: bool,
}

impl LoopRow {
    /// CSV encoding, matching [`LOOP_CSV_HEADER`].
    pub fn csv(&self) -> String {
        format!(
            "{},{:.3},{:.3},{},{},{},{},{},{},{},{},{:.6},{:.6},{},{}",
            self.scenario,
            self.tau,
            self.penalty,
            self.steps,
            self.executed,
            self.failures,
            self.held_out,
            self.fallbacks,
            self.switches,
            self.tripped,
            self.untrusted,
            self.regret_seconds,
            self.oracle_seconds,
            self.breaker_exact as u8,
            self.ok as u8
        )
    }
}

/// Header for `results/loop_regret.csv`.
pub const LOOP_CSV_HEADER: &str = "scenario,tau,penalty,steps,executed,failures,held_out,\
     fallbacks,switches,tripped,untrusted,regret_s,oracle_s,breaker_exact,ok";

/// The whole suite: scenario rows plus the τ × penalty sweep.
#[derive(Clone, Debug, Default)]
pub struct LoopSuite {
    /// All scored rows, scenarios first.
    pub rows: Vec<LoopRow>,
}

impl LoopSuite {
    /// Whether every row's invariants held.
    pub fn ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }
}

/// Ground-truth runtimes: clean simulation per configuration, memoized.
#[derive(Default)]
struct TruthTable {
    memo: BTreeMap<ConfigKey, f64>,
}

impl TruthTable {
    fn runtime(&mut self, spec: &ClusterSpec, key: &ConfigKey) -> f64 {
        if let Some(&t) = self.memo.get(key) {
            return t;
        }
        let cfg = config_of_key(key);
        let t = simulate_hpl(spec, &cfg, &HplParams::order(LOOP_N).with_nb(NB)).wall_seconds;
        self.memo.insert(key.clone(), t);
        t
    }
}

/// Rebuilds the executable configuration a [`ConfigKey`] names.
fn config_of_key(key: &ConfigKey) -> Configuration {
    Configuration {
        uses: key
            .iter()
            .map(|&(kind, pes, procs_per_pe)| KindUse {
                kind: KindId(kind),
                pes,
                procs_per_pe,
            })
            .collect(),
    }
}

/// A stale copy of the campaign (`Ta` off by 10 %), so the loop's
/// measurements actually move the model — same seeding the sharded
/// streaming experiments use.
fn stale_seed(db: &MeasurementDb) -> MeasurementDb {
    let mut seed = MeasurementDb::new();
    for key in db.keys() {
        for s in db.samples(key) {
            let mut stale = *s;
            stale.ta *= 1.1;
            seed.upsert(*key, stale);
        }
    }
    seed
}

/// Everything one closed-loop replay produced.
struct LoopRun {
    report: LoopReport,
    tripped: Vec<ConfigKey>,
    failures_by_config: BTreeMap<ConfigKey, usize>,
    engine: Engine,
    optimizer: OnlineOptimizer,
}

/// Drives one closed-loop replay of `fault` at (`tau`, `penalty`).
fn run_loop(
    seed_db: &MeasurementDb,
    fault: &ExecutionFaultPlan,
    tau: f64,
    penalty: f64,
) -> LoopRun {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let engine = Engine::new(Box::new(PolyLsqBackend::paper()), seed_db.clone(), None)
        .expect("stale campaign fits");
    let mut optimizer = OnlineOptimizer::new(evaluation_space(), LOOP_N, tau)
        .expect("loop optimizer inputs are valid")
        .with_fallback_penalty(penalty);
    let mut breaker = CircuitBreaker::new(breaker_policy());
    let mut executor = StepExecutor::new(&spec, LOOP_N, NB, *fault, RetryPolicy::default());
    let report = run_closed_loop(
        &engine,
        &mut optimizer,
        &mut breaker,
        LOOP_STEPS,
        |cfg, step| executor.execute(cfg, step),
    );
    LoopRun {
        report,
        tripped: breaker.tripped_configs(),
        failures_by_config: executor.fault_log().failures_by_config.clone(),
        engine,
        optimizer,
    }
}

/// The breaker-exactness oracle: every configuration the fault log
/// charged `threshold` terminal failures must have tripped, and every
/// tripped configuration must be backed by at least `threshold`
/// failure + flap strikes. With the suite's window spanning the whole
/// run, the two directions pin the trip set exactly.
fn breaker_matches(run: &LoopRun) -> bool {
    let threshold = breaker_policy().threshold;
    let complete = run
        .failures_by_config
        .iter()
        .filter(|&(_, &n)| n >= threshold)
        .all(|(key, _)| run.tripped.contains(key));
    let sound = run.tripped.iter().all(|key| {
        let failures = run.failures_by_config.get(key).copied().unwrap_or(0);
        let flaps = run.report.flap_strikes.get(key).copied().unwrap_or(0);
        failures + flaps >= threshold
    });
    complete && sound
}

/// Per-step executed configurations with hold-over: a held-out step
/// keeps the previously deployed configuration (`None` before any
/// deployment).
fn deployed_trace(report: &LoopReport) -> Vec<Option<ConfigKey>> {
    let mut current: Option<ConfigKey> = None;
    report
        .steps
        .iter()
        .map(|s| {
            if let Some(key) = &s.executed {
                current = Some(key.clone());
            }
            current.clone()
        })
        .collect()
}

/// Cumulative regret of `faulty` against the clean-trace `oracle`,
/// under ground-truth (clean-simulation) runtimes. Returns
/// `(regret, oracle_total)`.
fn regret_vs_oracle(
    truth: &mut TruthTable,
    spec: &ClusterSpec,
    oracle: &LoopReport,
    faulty: &LoopReport,
) -> (f64, f64) {
    let oracle_trace = deployed_trace(oracle);
    let faulty_trace = deployed_trace(faulty);
    let mut regret = 0.0;
    let mut oracle_total = 0.0;
    for (best, ran) in oracle_trace.iter().zip(&faulty_trace) {
        let Some(best) = best else { continue };
        let t_best = truth.runtime(spec, best);
        oracle_total += t_best;
        let t_ran = match ran {
            Some(key) => truth.runtime(spec, key),
            // Nothing ever deployed: charge the oracle's runtime
            // (zero regret contribution) — the loop is still warming.
            None => t_best,
        };
        regret += (t_ran - t_best).max(0.0);
    }
    (regret, oracle_total)
}

/// Fault-free gate: the loop's final bank must be bit-identical to a
/// one-shot fit of the stale seed with every ingested batch upserted —
/// the closed loop converges to exactly the offline workflow's model.
fn clean_bank_converged(seed_db: &MeasurementDb, run: &LoopRun) -> bool {
    let mut replay = seed_db.clone();
    for batch in &run.report.batches {
        for (key, sample) in &batch.trials {
            replay.upsert(*key, *sample);
        }
    }
    let reference = PolyLsqBackend::paper().fit(&replay).expect("one-shot fit");
    banks_bit_equal(run.engine.snapshot().bank(), &reference)
}

/// Fault-free gate: replaying an offline optimizer over the loop's
/// recorded snapshots must reproduce the decision log bit for bit.
fn clean_trace_matches(run: &LoopRun, tau: f64, penalty: f64) -> bool {
    let mut offline = OnlineOptimizer::new(evaluation_space(), LOOP_N, tau)
        .expect("loop optimizer inputs are valid")
        .with_fallback_penalty(penalty);
    for snap in &run.report.snapshots {
        offline.observe_fresh(snap);
    }
    if offline.log().len() != run.optimizer.log().len() {
        return false;
    }
    offline.log().iter().zip(run.optimizer.log()).all(|(a, b)| {
        a.generation == b.generation
            && a.recommended == b.recommended
            && a.recommended_time.to_bits() == b.recommended_time.to_bits()
            && a.switched == b.switched
    })
}

/// Scores one replay into a [`LoopRow`].
#[allow(clippy::too_many_arguments)]
fn score(
    scenario: &str,
    tau: f64,
    penalty: f64,
    run: &LoopRun,
    oracle: &LoopReport,
    truth: &mut TruthTable,
    spec: &ClusterSpec,
    clean_gates: Option<(bool, bool)>,
) -> LoopRow {
    let (regret, oracle_total) = regret_vs_oracle(truth, spec, oracle, &run.report);
    let breaker_exact = breaker_matches(run);
    let completed = run.report.steps.len() == LOOP_STEPS as usize;
    let (converged, trace_matches) = clean_gates.unwrap_or((true, true));
    let zero_regret_ok = clean_gates.is_none() || regret == 0.0;
    let ok = completed
        && run.report.untrusted_recommendations == 0
        && breaker_exact
        && regret <= REGRET_BOUND * oracle_total
        && converged
        && trace_matches
        && zero_regret_ok;
    LoopRow {
        scenario: scenario.to_string(),
        tau,
        penalty,
        steps: run.report.steps.len(),
        executed: run
            .report
            .steps
            .iter()
            .filter(|s| s.executed.is_some() && s.error.is_none())
            .count(),
        failures: run.report.failures,
        held_out: run.report.held_out,
        fallbacks: run.report.fallbacks,
        switches: run.report.switches(),
        tripped: run.tripped.len(),
        untrusted: run.report.untrusted_recommendations,
        regret_seconds: regret,
        oracle_seconds: oracle_total,
        breaker_exact,
        converged,
        trace_matches,
        ok,
    }
}

/// τ grid for the hysteresis sweep.
pub const SWEEP_TAUS: [f64; 4] = [0.0, 0.02, 0.05, 0.1];
/// Fallback-penalty grid for the hysteresis sweep.
pub const SWEEP_PENALTIES: [f64; 3] = [1.0, 1.5, 2.0];

/// Runs the full `repro loop` suite: every seeded scenario at the
/// pinned (τ, penalty), then the deterministic τ × penalty sweep over
/// the compound faulty campaign, each point's regret measured against
/// its own clean-trace oracle.
pub fn loop_suite(plan: &MeasurementPlan) -> LoopSuite {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let seed_db = stale_seed(&campaign_db(plan));
    let mut truth = TruthTable::default();
    let mut suite = LoopSuite::default();

    // Scenario table at the pinned (τ, penalty); the clean run doubles
    // as every scenario's oracle trace.
    let clean_plan = ExecutionFaultPlan::default();
    let clean = run_loop(&seed_db, &clean_plan, LOOP_TAU, LOOP_PENALTY);
    let clean_gates = (
        clean_bank_converged(&seed_db, &clean),
        clean_trace_matches(&clean, LOOP_TAU, LOOP_PENALTY),
    );
    let oracle = clean.report.clone();
    suite.rows.push(score(
        "clean",
        LOOP_TAU,
        LOOP_PENALTY,
        &clean,
        &oracle,
        &mut truth,
        &spec,
        Some(clean_gates),
    ));
    for (name, fault) in loop_scenarios() {
        if name == "clean" {
            continue;
        }
        let run = run_loop(&seed_db, &fault, LOOP_TAU, LOOP_PENALTY);
        suite.rows.push(score(
            name,
            LOOP_TAU,
            LOOP_PENALTY,
            &run,
            &oracle,
            &mut truth,
            &spec,
            None,
        ));
    }

    // τ × penalty sweep over the compound faulty campaign. The clean
    // oracle depends on τ only (the penalty is inert on a healthy
    // engine), so one oracle per τ serves the whole penalty row.
    let compound = loop_scenarios()
        .into_iter()
        .find(|(name, _)| *name == "compound")
        .expect("compound scenario exists")
        .1;
    for &tau in &SWEEP_TAUS {
        let sweep_oracle = run_loop(&seed_db, &clean_plan, tau, 1.0).report;
        for &penalty in &SWEEP_PENALTIES {
            let run = run_loop(&seed_db, &compound, tau, penalty);
            suite.rows.push(score(
                "sweep",
                tau,
                penalty,
                &run,
                &sweep_oracle,
                &mut truth,
                &spec,
                None,
            ));
        }
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_plans_are_distinctly_seeded() {
        let scenarios = loop_scenarios();
        assert_eq!(scenarios.len(), 8);
        let mut seeds: Vec<u64> = scenarios.iter().map(|(_, p)| p.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "every plan carries its own seed");
    }

    #[test]
    fn config_of_key_round_trips() {
        let cfg = Configuration::p1m1_p2m2(1, 1, 2, 1);
        let key = etm_core::config_key(&cfg);
        assert_eq!(etm_core::config_key(&config_of_key(&key)), key);
    }

    #[test]
    fn deployed_trace_holds_over_gaps() {
        use etm_search::LoopStep;
        let mk = |step: u64, executed: Option<ConfigKey>| LoopStep {
            step,
            generation: 0,
            recommended: None,
            executed,
            fallback: false,
            switched: false,
            error: None,
            wall_seconds: 0.0,
        };
        let report = LoopReport {
            steps: vec![
                mk(0, None),
                mk(1, Some(vec![(0, 1, 1)])),
                mk(2, None),
                mk(3, Some(vec![(1, 2, 1)])),
            ],
            ..LoopReport::default()
        };
        assert_eq!(
            deployed_trace(&report),
            vec![
                None,
                Some(vec![(0, 1, 1)]),
                Some(vec![(0, 1, 1)]),
                Some(vec![(1, 2, 1)]),
            ]
        );
    }

    #[test]
    fn csv_row_is_stable() {
        let row = LoopRow {
            scenario: "clean".into(),
            tau: 0.05,
            penalty: 1.25,
            steps: 12,
            executed: 12,
            failures: 0,
            held_out: 0,
            fallbacks: 0,
            switches: 1,
            tripped: 0,
            untrusted: 0,
            regret_seconds: 0.0,
            oracle_seconds: 120.5,
            breaker_exact: true,
            converged: true,
            trace_matches: true,
            ok: true,
        };
        assert_eq!(
            row.csv(),
            "clean,0.050,1.250,12,12,0,0,0,1,0,0,0.000000,120.500000,1,1"
        );
        assert_eq!(
            LOOP_CSV_HEADER.split(',').count(),
            row.csv().split(',').count()
        );
    }
}
