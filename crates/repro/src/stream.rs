//! Streaming replays of the construction campaigns: the online form of
//! the paper's offline workflow, plus a snapshot-pinned backend A/B
//! harness.
//!
//! [`stream_experiment`] replays a campaign as shuffled, duplicated
//! [`TrialBatch`](etm_core::stream::TrialBatch)es through
//! [`Engine::ingest_batch`], runs the §4 exhaustive selection against
//! every published snapshot via an
//! [`OnlineOptimizer`](etm_search::OnlineOptimizer), and reports the
//! decision log next to the offline optimum of the completed campaign.
//!
//! [`ab_compare`] streams the *identical* batch sequence through two
//! fitting backends, pins one final snapshot per engine, and reports
//! per-configuration estimate divergence over the 62-configuration
//! evaluation grid plus each backend's error against simulated
//! measurement and the campaign's Table-3/6-style measurement cost.
//!
//! Both run the engines *unadjusted* (no §4.1 transformation): the
//! adjustment is fit from reference measurements that are themselves
//! campaign data still arriving mid-stream, so raw estimates on both
//! sides compare like with like.

use etm_cluster::spec::paper_cluster;
use etm_cluster::{CommLibProfile, Configuration, KindId};
use etm_core::backend::{BinnedPolyBackend, ModelBackend, PolyLsqBackend};
use etm_core::engine::Engine;
use etm_core::pipeline::ModelBank;
use etm_core::plan::{MeasurementPlan, PlanKind};
use etm_core::stream::{consume, trials_of_db, StreamConfig, StreamReport, TrialSource};
use etm_core::MeasurementDb;
use etm_search::{best_config, ConfigSpace, OnlineDecision, OnlineOptimizer, SearchResult};

use crate::correlate::correlation_at;
use crate::experiments::{campaign_db, NB};

/// Bit-level equality of two fitted model banks (every N-T and P-T
/// coefficient, plus the composition bookkeeping).
pub fn banks_bit_equal(a: &ModelBank, b: &ModelBank) -> bool {
    if a.nt.len() != b.nt.len() || a.pt.len() != b.pt.len() {
        return false;
    }
    for (key, ma) in &a.nt {
        let Some(mb) = b.nt.get(key) else {
            return false;
        };
        let ka = (0..4).all(|i| ma.ka[i].to_bits() == mb.ka[i].to_bits());
        let kc = (0..3).all(|i| ma.kc[i].to_bits() == mb.kc[i].to_bits());
        if !(ka && kc) {
            return false;
        }
    }
    for (key, ma) in &a.pt {
        let Some(mb) = b.pt.get(key) else {
            return false;
        };
        let ka = (0..2).all(|i| ma.ka[i].to_bits() == mb.ka[i].to_bits());
        let kc = (0..3).all(|i| ma.kc[i].to_bits() == mb.kc[i].to_bits());
        if !(ka && kc) {
            return false;
        }
    }
    a.composed_kinds == b.composed_kinds && a.composed_groups == b.composed_groups
}

/// The paper's §4 evaluation space on the paper cluster: `M₁ ≤ 6`,
/// `M₂ = 1` — 62 configurations.
pub fn evaluation_space() -> ConfigSpace {
    ConfigSpace::new(&paper_cluster(CommLibProfile::mpich122()), vec![6, 1])
}

/// Streams `trials` through a fresh engine: bootstraps on the first
/// batches until the backend can fit at all (a campaign starts
/// unfittable — one PE count, too few sizes), then drives
/// `Engine::ingest_batch` via [`consume`], invoking `on_snapshot` with
/// every published snapshot. Returns the engine with the stream fully
/// applied and flushed.
///
/// # Panics
/// Panics if the campaign never becomes fittable or contains non-finite
/// samples — both impossible for a completed construction campaign.
pub fn stream_through<F>(
    backend_of: &dyn Fn() -> Box<dyn ModelBackend>,
    trials: Vec<(etm_core::SampleKey, etm_core::Sample)>,
    cfg: StreamConfig,
    mut on_snapshot: F,
) -> (Engine, StreamReport)
where
    F: FnMut(&std::sync::Arc<etm_core::EngineSnapshot>),
{
    let source = TrialSource::spawn(trials, cfg);
    let rx = source.receiver();
    let mut pending = MeasurementDb::new();
    let mut engine: Option<Engine> = None;
    let mut bootstrap_batches = 0usize;
    while engine.is_none() {
        let Ok(batch) = rx.recv() else {
            break;
        };
        bootstrap_batches += 1;
        for (k, s) in &batch.trials {
            pending.upsert(*k, *s);
        }
        if let Ok(e) = Engine::new(backend_of(), pending.clone(), None) {
            engine = Some(e);
        }
    }
    let engine = engine.expect("campaign must bootstrap an engine");
    on_snapshot(&engine.snapshot());
    let mut report = consume(&engine, rx, |_, snap| on_snapshot(snap))
        .expect("completed campaign data is finite");
    report.batches += bootstrap_batches;
    source.join();
    (engine, report)
}

/// Outcome of one streamed campaign with online re-optimization.
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// Which campaign was streamed.
    pub plan: PlanKind,
    /// Problem size the online selection optimizes.
    pub n: usize,
    /// What the consumer loop did with the stream.
    pub report: StreamReport,
    /// One decision per observed snapshot, in generation order.
    pub decisions: Vec<OnlineDecision>,
    /// The optimizer's standing recommendation after the stream drained.
    pub recommended: Configuration,
    /// The offline §4 optimum of the completed campaign, same backend,
    /// same (unadjusted) serving path.
    pub offline: SearchResult,
    /// Whether the streamed engine's final bank is bit-identical to the
    /// one-shot fit of the same campaign — the tentpole invariant.
    pub converged: bool,
}

/// Streams a campaign (shuffled, duplicated per `cfg`) through the
/// paper's backend while an [`OnlineOptimizer`] re-runs the §4
/// selection at size `n` against every published snapshot, switching
/// its recommendation past the `hysteresis` threshold.
pub fn stream_experiment(
    plan: &MeasurementPlan,
    cfg: StreamConfig,
    hysteresis: f64,
    n: usize,
) -> StreamRun {
    let db = campaign_db(plan);
    let trials = trials_of_db(&db);
    let reference = PolyLsqBackend::paper().fit(&db).expect("one-shot fit");
    let offline_engine =
        Engine::new(Box::new(PolyLsqBackend::paper()), db, None).expect("completed campaign fits");
    let offline =
        best_config(&offline_engine.snapshot(), &evaluation_space(), n).expect("offline optimum");

    let mut optimizer =
        OnlineOptimizer::new(evaluation_space(), n, hysteresis).expect("valid optimizer inputs");
    let (engine, report) =
        stream_through(&|| Box::new(PolyLsqBackend::paper()), trials, cfg, |snap| {
            optimizer.observe(snap);
        });
    let converged = banks_bit_equal(engine.snapshot().bank(), &reference);
    let recommended = optimizer
        .recommended()
        .cloned()
        .expect("at least the bootstrap snapshot is estimable");
    StreamRun {
        plan: plan.kind,
        n,
        report,
        decisions: optimizer.log().to_vec(),
        recommended,
        offline,
        converged,
    }
}

/// One evaluation-grid configuration under both pinned snapshots.
#[derive(Clone, Debug)]
pub struct AbRow {
    /// The candidate configuration.
    pub config: Configuration,
    /// Fast-kind multiplicity `M₁` (the plots' series key).
    pub m1: usize,
    /// Estimate under backend A's final snapshot, seconds.
    pub estimate_a: f64,
    /// Estimate under backend B's final snapshot, seconds. `NaN` when
    /// backend B's bank lacks the models this configuration needs — a
    /// bank-shape mismatch reported as a divergence row, not a crash.
    pub estimate_b: f64,
    /// Simulated measured time, seconds.
    pub measured: f64,
}

impl AbRow {
    /// Relative estimate divergence `(B − A)/A`.
    pub fn divergence(&self) -> f64 {
        (self.estimate_b - self.estimate_a) / self.estimate_a
    }

    /// Backend A's relative error against measurement.
    pub fn rel_error_a(&self) -> f64 {
        (self.estimate_a - self.measured) / self.measured
    }

    /// Backend B's relative error against measurement.
    pub fn rel_error_b(&self) -> f64 {
        (self.estimate_b - self.measured) / self.measured
    }
}

/// The snapshot-pinned A/B comparison of two backends over one streamed
/// campaign.
#[derive(Clone, Debug)]
pub struct AbReport {
    /// Which campaign was streamed.
    pub plan: PlanKind,
    /// Problem size of the evaluation grid.
    pub n: usize,
    /// Backend A's name (the paper's pipeline).
    pub backend_a: &'static str,
    /// Backend B's name.
    pub backend_b: &'static str,
    /// Stream accounting for backend A's engine.
    pub report_a: StreamReport,
    /// Stream accounting for backend B's engine.
    pub report_b: StreamReport,
    /// Generation each engine's pinned snapshot carries.
    pub generations: (u64, u64),
    /// One row per grid configuration estimable under snapshot A;
    /// configurations snapshot B cannot estimate appear with
    /// `estimate_b = NaN` rather than being dropped.
    pub rows: Vec<AbRow>,
    /// Grid configurations estimable under A but not B — the two banks
    /// disagree on shape (a group fit by one backend only).
    pub shape_mismatches: usize,
    /// Table-3/6-style campaign cost: total simulated measurement
    /// seconds both engines ingested.
    pub campaign_cost: f64,
}

impl AbReport {
    /// Mean absolute relative estimate divergence across the grid.
    /// Shape-mismatch rows (non-finite divergence) are excluded.
    pub fn mean_abs_divergence(&self) -> f64 {
        let finite: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.divergence().abs())
            .filter(|d| d.is_finite())
            .collect();
        if finite.is_empty() {
            return 0.0;
        }
        finite.iter().sum::<f64>() / finite.len() as f64
    }

    /// Largest absolute relative divergence across the grid, over rows
    /// both snapshots could estimate.
    pub fn max_abs_divergence(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.divergence().abs())
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Mean absolute relative error of each backend against simulated
    /// measurement, `(A, B)`, each over the rows that backend could
    /// estimate.
    pub fn mean_abs_rel_errors(&self) -> (f64, f64) {
        let mean = |errors: Vec<f64>| {
            if errors.is_empty() {
                0.0
            } else {
                errors.iter().sum::<f64>() / errors.len() as f64
            }
        };
        let a = mean(
            self.rows
                .iter()
                .map(|r| r.rel_error_a().abs())
                .filter(|e| e.is_finite())
                .collect(),
        );
        let b = mean(
            self.rows
                .iter()
                .map(|r| r.rel_error_b().abs())
                .filter(|e| e.is_finite())
                .collect(),
        );
        (a, b)
    }
}

/// Streams the identical replayed batch sequence of a campaign through
/// the paper's `poly_lsq` backend and the per-regime `binned_poly`
/// backend, pins each engine's final snapshot, and evaluates both over
/// the 62-configuration grid at size `n`.
pub fn ab_compare(plan: &MeasurementPlan, cfg: StreamConfig, n: usize) -> AbReport {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let db = campaign_db(plan);
    let trials = trials_of_db(&db);
    let (engine_a, report_a) = stream_through(
        &|| Box::new(PolyLsqBackend::paper()),
        trials.clone(),
        cfg,
        |_| {},
    );
    let (engine_b, report_b) = stream_through(
        &|| Box::new(BinnedPolyBackend::paper()),
        trials,
        cfg,
        |_| {},
    );
    // Pin both snapshots: later ingests on either engine cannot move
    // this comparison.
    let snap_a = engine_a.snapshot();
    let snap_b = engine_b.snapshot();
    let points = correlation_at(&spec, &snap_a, n, NB);
    // A configuration B's bank cannot estimate is a finding, not a
    // crash: report it as a NaN-divergence row and count it.
    let mut shape_mismatches = 0usize;
    let rows: Vec<AbRow> = points
        .iter()
        .map(|p| {
            let estimate_b = snap_b.estimate(&p.config, n).unwrap_or_else(|_| {
                shape_mismatches += 1;
                f64::NAN
            });
            AbRow {
                config: p.config.clone(),
                m1: p.config.procs_per_pe(KindId(snap_a.fast_kind())),
                estimate_a: p.estimate_raw,
                estimate_b,
                measured: p.measured,
            }
        })
        .collect();
    AbReport {
        plan: plan.kind,
        n,
        backend_a: engine_a.backend_name(),
        backend_b: engine_b.backend_name(),
        report_a,
        report_b,
        generations: (snap_a.generation(), snap_b.generation()),
        rows,
        shape_mismatches,
        campaign_cost: db.total_cost(),
    }
}
