//! The chaos suite: seeded fault plans swept over a streamed campaign,
//! asserting the degradation ladder's end-to-end invariants.
//!
//! Each scenario replays a campaign as batches, applies a pure
//! [`FaultPlan`] (corruption, drops, truncation, duplicate floods), and
//! streams the faulted batches through a supervised consumer
//! ([`consume_supervised`]) over a [`FaultySource`] that may stall or
//! die on cue. A health-aware [`OnlineOptimizer`] observes every
//! published snapshot. The invariants, per scenario:
//!
//! * **No panic, no deadlock** — every run completes (stalls bounded by
//!   the timeout, dead sources respawned by the supervisor).
//! * **Recoverable faults converge**: when every lost trial is
//!   re-delivered clean ([`FaultPlan::redeliver`]) — or nothing was
//!   lost at all — the final bank is bit-identical to the one-shot fit
//!   of the clean campaign and no group is quarantined.
//! * **Unrecoverable faults degrade, typed**: the run ends with the
//!   quarantined set exactly equal to the injected-faulty groups of the
//!   [`FaultLog`](etm_core::faults::FaultLog) — no more, no fewer.
//! * **The optimizer never trusts a quarantined model**: no logged
//!   decision recommends a configuration backed by an untrusted
//!   (quarantined, non-composed) group, at any generation.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use etm_core::backend::{ModelBackend, PolyLsqBackend};
use etm_core::engine::{Engine, EngineSnapshot, QuarantinePolicy};
use etm_core::faults::{CorruptKind, FaultPlan, FaultySource};
use etm_core::pipeline::groups_of;
use etm_core::plan::{MeasurementPlan, PlanKind};
use etm_core::stream::{
    consume_supervised, replay, trials_of_db, BatchSource, ConsumeOptions, ShardedConsumer,
    StreamConfig, TrialBatch,
};
use etm_core::MeasurementDb;
use etm_search::OnlineOptimizer;

use crate::experiments::campaign_db;
use crate::stream::{banks_bit_equal, evaluation_space};

/// One chaos scenario's outcome against the ladder invariants.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Which campaign was streamed.
    pub plan: PlanKind,
    /// Scenario label.
    pub scenario: &'static str,
    /// Whether the injected faults are recoverable (lost trials
    /// re-delivered clean, or nothing lost at all).
    pub recoverable: bool,
    /// Batches the supervised consumer received, across incarnations.
    pub batches: usize,
    /// Source respawns the supervisor performed.
    pub restarts: usize,
    /// Incarnations declared stalled.
    pub stalls: usize,
    /// Snapshots published.
    pub published: usize,
    /// Samples the quarantine policy rejected.
    pub rejected: usize,
    /// Trials the fault plan corrupted.
    pub corrupted: usize,
    /// Batches the fault plan dropped whole.
    pub dropped_batches: usize,
    /// Final quarantined `(kind, m)` groups.
    pub quarantined: Vec<(usize, usize)>,
    /// Final quarantined groups served by a §3.5 composed fallback.
    pub fallback: Vec<(usize, usize)>,
    /// Whether the final bank is bit-identical to the clean one-shot
    /// fit.
    pub converged: bool,
    /// Whether the final quarantined set equals the expected set (empty
    /// for recoverable scenarios, the injected-faulty groups otherwise).
    pub quarantine_matches_injection: bool,
    /// Decisions the online optimizer logged.
    pub decisions: usize,
    /// Decisions whose recommendation rode a composed fallback.
    pub degraded_decisions: usize,
    /// Decisions that recommended a configuration backed by an
    /// untrusted group — must be zero, always.
    pub untrusted_recommendations: usize,
    /// The scenario's ladder invariant, condensed.
    pub ok: bool,
}

/// The fixed scenario sweep: one plan per rung of the fault model.
/// Every plan is a pure literal — the sweep is reproducible bit-for-bit.
pub fn chaos_scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::default()),
        (
            "corrupt-nan",
            FaultPlan {
                seed: 11,
                corrupt_every: 7,
                ..FaultPlan::default()
            },
        ),
        (
            "corrupt-inf",
            FaultPlan {
                seed: 12,
                corrupt_every: 5,
                corrupt: CorruptKind::Inf,
                ..FaultPlan::default()
            },
        ),
        (
            "corrupt-outlier",
            FaultPlan {
                seed: 13,
                corrupt_every: 6,
                corrupt: CorruptKind::Outlier,
                ..FaultPlan::default()
            },
        ),
        (
            "drop-truncate",
            FaultPlan {
                seed: 14,
                drop_every: 5,
                truncate_every: 4,
                ..FaultPlan::default()
            },
        ),
        (
            "duplicate-flood",
            FaultPlan {
                seed: 15,
                flood_every: 3,
                ..FaultPlan::default()
            },
        ),
        (
            "kill-restart",
            FaultPlan {
                kill_at: Some(4),
                ..FaultPlan::default()
            },
        ),
        (
            "stall-restart",
            FaultPlan {
                stall_at: Some(3),
                ..FaultPlan::default()
            },
        ),
        (
            "poison-group",
            FaultPlan {
                seed: 17,
                corrupt_every: 1,
                target: Some((1, 1)),
                redeliver: false,
                ..FaultPlan::default()
            },
        ),
        (
            "compound",
            FaultPlan {
                seed: 18,
                corrupt_every: 9,
                drop_every: 6,
                flood_every: 4,
                kill_at: Some(6),
                ..FaultPlan::default()
            },
        ),
    ]
}

fn is_recoverable(fault: &FaultPlan) -> bool {
    fault.redeliver
        || (fault.corrupt_every == 0 && fault.drop_every == 0 && fault.truncate_every == 0)
}

/// Runs one fault plan over a streamed campaign and scores the ladder
/// invariants. The engine starts from a stale calibration of the same
/// campaign (every `Ta` inflated 10%), so every group is fittable from
/// generation 0 and the faults hit a *serving* engine, not a
/// bootstrapping one — the production shape of the problem.
pub fn run_chaos_scenario(
    plan: &MeasurementPlan,
    scenario: &'static str,
    fault: &FaultPlan,
    cfg: StreamConfig,
    n: usize,
) -> ChaosRow {
    let db = campaign_db(plan);
    let trials = trials_of_db(&db);
    let reference = PolyLsqBackend::paper().fit(&db).expect("one-shot fit");
    let mut seed_db = MeasurementDb::new();
    for (k, s) in &trials {
        let mut stale = *s;
        stale.ta *= 1.1;
        seed_db.upsert(*k, stale);
    }
    let engine =
        Engine::new(Box::new(PolyLsqBackend::paper()), seed_db, None).expect("stale campaign fits");
    let (faulted, log) = fault.apply(&replay(&trials, &cfg));
    let expected = faulted.len() as u64;

    let mut optimizer =
        OnlineOptimizer::new(evaluation_space(), n, 0.05).expect("valid optimizer inputs");
    let mut untrusted_recommendations = 0usize;
    let mut incarnation = 0usize;
    let opts = ConsumeOptions {
        stall_timeout: Some(Duration::from_millis(100)),
        ..ConsumeOptions::default()
    };
    let sup = consume_supervised(
        &engine,
        opts,
        expected,
        3,
        |next_seq| {
            incarnation += 1;
            let tail: Vec<TrialBatch> = faulted
                .iter()
                .filter(|b| b.seq >= next_seq)
                .cloned()
                .collect();
            // Stall/kill marks fire on the first incarnation only: the
            // respawned source models a repaired harness.
            let (stall, kill) = if incarnation == 1 {
                (fault.stall_at, fault.kill_at)
            } else {
                (None, None)
            };
            Box::new(FaultySource::spawn(tail, cfg.channel_cap, stall, kill))
                as Box<dyn BatchSource>
        },
        |_, snap| {
            if let Some(d) = optimizer.observe(snap) {
                let health = snap.health();
                if groups_of(&d.recommended)
                    .into_iter()
                    .any(|g| health.is_untrusted(g))
                {
                    untrusted_recommendations += 1;
                }
            }
        },
    )
    .expect("the supervisor absorbs every injected transport fault");

    let snap = engine.snapshot();
    let health = snap.health().clone();
    let recoverable = is_recoverable(fault);
    let converged = banks_bit_equal(snap.bank(), &reference);
    let quarantined_set: BTreeSet<(usize, usize)> = health.quarantined.iter().copied().collect();
    let expected_set: BTreeSet<(usize, usize)> = if recoverable {
        BTreeSet::new()
    } else {
        log.corrupted_groups.clone()
    };
    let quarantine_matches_injection = quarantined_set == expected_set;
    let decisions = optimizer.log().len();
    let degraded_decisions = optimizer.log().iter().filter(|d| d.degraded).count();
    let ok = untrusted_recommendations == 0
        && quarantine_matches_injection
        && if recoverable {
            converged
        } else {
            !quarantined_set.is_empty()
        };
    ChaosRow {
        plan: plan.kind,
        scenario,
        recoverable,
        batches: sup.report.batches,
        restarts: sup.restarts,
        stalls: sup.stalls,
        published: sup.report.published,
        rejected: health.rejected_samples,
        corrupted: log.corrupted,
        dropped_batches: log.dropped_batches,
        quarantined: health.quarantined.clone(),
        fallback: health.composed_fallback.clone(),
        converged,
        quarantine_matches_injection,
        decisions,
        degraded_decisions,
        untrusted_recommendations,
        ok,
    }
}

/// Streams one fault scenario under the same supervision shape as
/// [`run_chaos_scenario`] (stale seed, faults on the first source
/// incarnation only, 100 ms stall timeout, 3 restarts) and captures
/// every published snapshot, in publication order.
///
/// The trace lets callers drive *alternative serving paths* — e.g. the
/// batched memoized [`OnlineOptimizer`] against its scalar
/// reference-eval twin — over the identical snapshot sequence and diff
/// the decision logs bit-for-bit.
///
/// # Panics
/// Panics when the supervisor's restart budget is exhausted — which
/// does not happen for the fixed scenario sweep.
pub fn chaos_snapshot_trace(
    plan: &MeasurementPlan,
    fault: &FaultPlan,
    cfg: StreamConfig,
) -> Vec<Arc<EngineSnapshot>> {
    let db = campaign_db(plan);
    let trials = trials_of_db(&db);
    let mut seed_db = MeasurementDb::new();
    for (k, s) in &trials {
        let mut stale = *s;
        stale.ta *= 1.1;
        seed_db.upsert(*k, stale);
    }
    let engine =
        Engine::new(Box::new(PolyLsqBackend::paper()), seed_db, None).expect("stale campaign fits");
    let (faulted, _log) = fault.apply(&replay(&trials, &cfg));
    let expected = faulted.len() as u64;
    let mut incarnation = 0usize;
    let opts = ConsumeOptions {
        stall_timeout: Some(Duration::from_millis(100)),
        ..ConsumeOptions::default()
    };
    let mut trace: Vec<Arc<EngineSnapshot>> = Vec::new();
    consume_supervised(
        &engine,
        opts,
        expected,
        3,
        |next_seq| {
            incarnation += 1;
            let tail: Vec<TrialBatch> = faulted
                .iter()
                .filter(|b| b.seq >= next_seq)
                .cloned()
                .collect();
            let (stall, kill) = if incarnation == 1 {
                (fault.stall_at, fault.kill_at)
            } else {
                (None, None)
            };
            Box::new(FaultySource::spawn(tail, cfg.channel_cap, stall, kill))
                as Box<dyn BatchSource>
        },
        |_, snap| trace.push(Arc::clone(snap)),
    )
    .expect("the supervisor absorbs every injected transport fault");
    trace
}

/// The end state of one fault plan replayed through a
/// [`ShardedConsumer`] pool — what the shard-determinism acceptance
/// compares across pool widths.
#[derive(Clone, Debug)]
pub struct ShardedChaosOutcome {
    /// The merged snapshot after the supervised drain.
    pub snapshot: Arc<EngineSnapshot>,
    /// Final merged quarantined `(kind, m)` groups (union over shards).
    pub quarantined: Vec<(usize, usize)>,
    /// Source respawns the pool supervisor performed.
    pub restarts: usize,
    /// Incarnations declared stalled.
    pub stalls: usize,
    /// Whether the merged bank is bit-identical to the clean one-shot
    /// fit of the campaign.
    pub converged: bool,
    /// Whether the injected faults are recoverable (see the module
    /// docs): a recoverable scenario must end converged and
    /// unquarantined at *every* pool width.
    pub recoverable: bool,
}

/// Replays one fault plan through a [`ShardedConsumer`] pool of
/// `width` workers under the same supervision shape as
/// [`run_chaos_scenario`] — stale seed, faults on the first source
/// incarnation only, 100 ms stall timeout, 3 restarts.
///
/// The pool-width determinism contract: for any width, the merged
/// quarantine set and — once both have quiesced — the merged bank are
/// functions of the faulted batch sequence alone, so two widths of the
/// same scenario must agree bit-for-bit.
///
/// # Panics
/// Panics when the pool cannot seed or the supervisor's restart budget
/// is exhausted — neither happens for the fixed scenario sweep.
pub fn run_sharded_chaos(
    plan: &MeasurementPlan,
    fault: &FaultPlan,
    cfg: StreamConfig,
    width: usize,
) -> ShardedChaosOutcome {
    let db = campaign_db(plan);
    let trials = trials_of_db(&db);
    let reference = PolyLsqBackend::paper().fit(&db).expect("one-shot fit");
    let mut seed_db = MeasurementDb::new();
    for (k, s) in &trials {
        let mut stale = *s;
        stale.ta *= 1.1;
        seed_db.upsert(*k, stale);
    }
    let opts = ConsumeOptions {
        stall_timeout: Some(Duration::from_millis(100)),
        ..ConsumeOptions::default()
    };
    let pool = ShardedConsumer::new(
        width,
        || Box::new(PolyLsqBackend::paper()) as Box<dyn ModelBackend>,
        seed_db,
        None,
        QuarantinePolicy::default(),
        opts,
    )
    .expect("stale campaign seeds the pool");
    let (faulted, _log) = fault.apply(&replay(&trials, &cfg));
    let expected = faulted.len() as u64;
    let mut incarnation = 0usize;
    let report = pool
        .consume_supervised(expected, 3, |next_seq| {
            incarnation += 1;
            let tail: Vec<TrialBatch> = faulted
                .iter()
                .filter(|b| b.seq >= next_seq)
                .cloned()
                .collect();
            let (stall, kill) = if incarnation == 1 {
                (fault.stall_at, fault.kill_at)
            } else {
                (None, None)
            };
            Box::new(FaultySource::spawn(tail, cfg.channel_cap, stall, kill))
                as Box<dyn BatchSource>
        })
        .expect("the pool supervisor absorbs every injected transport fault");
    let snapshot = pool.snapshot();
    let converged = banks_bit_equal(snapshot.bank(), &reference);
    let quarantined = snapshot.health().quarantined.clone();
    ShardedChaosOutcome {
        snapshot,
        quarantined,
        restarts: report.restarts,
        stalls: report.stalls,
        converged,
        recoverable: is_recoverable(fault),
    }
}

/// Sweeps every scenario of [`chaos_scenarios`] over one campaign.
pub fn chaos_suite(plan: &MeasurementPlan, n: usize) -> Vec<ChaosRow> {
    let cfg = StreamConfig {
        batch_size: 16,
        shuffle_seed: Some(42),
        duplicate_every: 0,
        defer_every: 0,
        channel_cap: 4,
    };
    chaos_scenarios()
        .into_iter()
        .map(|(name, fault)| run_chaos_scenario(plan, name, &fault, cfg, n))
        .collect()
}

/// Renders a group list as `kind:m` pairs joined by `|` (CSV-safe).
pub fn format_groups(groups: &[(usize, usize)]) -> String {
    if groups.is_empty() {
        return "-".to_string();
    }
    groups
        .iter()
        .map(|(k, m)| format!("{k}:{m}"))
        .collect::<Vec<_>>()
        .join("|")
}
