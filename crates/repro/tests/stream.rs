//! The streaming tentpole's acceptance criteria, at full campaign
//! scale: streaming the complete Basic campaign through
//! `Engine::ingest_batch` — batched, shuffled, with duplicates — must
//! yield a final bank bit-identical to the one-shot fit, and the online
//! optimizer's final recommendation must match the offline §4 optimum.

use etm_core::plan::MeasurementPlan;
use etm_core::stream::StreamConfig;
use etm_repro::stream::{ab_compare, stream_experiment};

#[test]
fn streamed_basic_campaign_matches_one_shot_fit_and_offline_optimum() {
    let plan = MeasurementPlan::basic();
    // Adversarial delivery: shuffled, every 5th trial re-delivered,
    // every 6th delivered late, small batches under backpressure.
    let cfg = StreamConfig {
        batch_size: 24,
        shuffle_seed: Some(77),
        duplicate_every: 5,
        defer_every: 6,
        channel_cap: 3,
    };
    let run = stream_experiment(&plan, cfg, 0.0, 6400);
    assert!(
        run.converged,
        "streamed bank must be bit-identical to the one-shot fit"
    );
    assert!(
        run.report.batches > 1,
        "campaign must arrive in many batches"
    );
    assert_eq!(
        run.recommended, run.offline.config,
        "online recommendation must equal the offline section-4 optimum"
    );
    // With zero hysteresis the last decision *is* the offline search on
    // a bank bit-identical to the offline engine's: same time, bit for
    // bit.
    let last = run.decisions.last().expect("decisions were logged");
    assert_eq!(last.recommended, run.offline.config);
    assert_eq!(last.recommended_time.to_bits(), run.offline.time.to_bits());
    // The decision log tracks strictly increasing generations.
    let gens: Vec<u64> = run.decisions.iter().map(|d| d.generation).collect();
    assert!(gens.windows(2).all(|w| w[0] < w[1]), "{gens:?}");
}

#[test]
fn batch_shape_does_not_change_the_final_model_or_recommendation() {
    let plan = MeasurementPlan::basic();
    let coarse = stream_experiment(
        &plan,
        StreamConfig {
            batch_size: 486, // the whole campaign in one batch
            shuffle_seed: None,
            duplicate_every: 0,
            defer_every: 0,
            channel_cap: 0,
        },
        0.0,
        6400,
    );
    let fine = stream_experiment(
        &plan,
        StreamConfig {
            batch_size: 16,
            shuffle_seed: Some(2026),
            duplicate_every: 3,
            defer_every: 0,
            channel_cap: 2,
        },
        0.0,
        6400,
    );
    assert!(coarse.converged && fine.converged);
    assert_eq!(coarse.recommended, fine.recommended);
    assert_eq!(
        coarse.offline.config, fine.offline.config,
        "offline optimum is a property of the campaign, not the stream"
    );
}

#[test]
fn ab_harness_pins_snapshots_and_reports_finite_divergence() {
    // NL campaign: smaller (120 trials), still two §3.4 regimes.
    let plan = MeasurementPlan::nl();
    let cfg = StreamConfig {
        batch_size: 16,
        shuffle_seed: Some(5),
        duplicate_every: 4,
        defer_every: 0,
        channel_cap: 2,
    };
    let report = ab_compare(&plan, cfg, 1600);
    assert_eq!(report.backend_a, "poly_lsq");
    assert_eq!(report.backend_b, "binned_poly");
    assert_eq!(
        report.shape_mismatches, 0,
        "same campaign: no bank-shape divergence rows expected"
    );
    assert!(
        !report.rows.is_empty(),
        "the evaluation grid must be estimable under both backends"
    );
    for r in &report.rows {
        assert!(r.estimate_a.is_finite() && r.estimate_a > 0.0);
        assert!(r.estimate_b.is_finite() && r.estimate_b > 0.0);
        assert!(r.measured.is_finite() && r.measured > 0.0);
        assert!(r.divergence().is_finite());
    }
    // The regimes are weighted differently, so the backends must not be
    // identical — but they fit the same data, so they must stay close.
    assert!(report.max_abs_divergence() > 0.0, "backends must differ");
    assert!(
        report.mean_abs_divergence() < 0.5,
        "same campaign, same family of models: divergence {:.3} too large",
        report.mean_abs_divergence()
    );
    let (err_a, err_b) = report.mean_abs_rel_errors();
    assert!(err_a.is_finite() && err_b.is_finite());
    assert!(
        report.campaign_cost > 0.0,
        "Table-3/6 cost must be accounted"
    );
}
