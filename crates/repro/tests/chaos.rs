//! The chaos acceptance criteria: sweep the seeded fault plans over the
//! NL campaign and hold the degradation ladder's invariants — no panic,
//! no deadlock, recoverable runs bit-identical to the clean one-shot
//! fit, unrecoverable runs quarantined exactly on the injected groups,
//! and no decision ever backed by an untrusted model.

use etm_core::plan::MeasurementPlan;
use etm_repro::chaos::chaos_suite;

#[test]
fn chaos_suite_holds_the_ladder_invariants() {
    let rows = chaos_suite(&MeasurementPlan::nl(), 3200);
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(r.ok, "scenario violated the ladder invariant: {r:?}");
        assert_eq!(r.untrusted_recommendations, 0, "{r:?}");
        assert!(r.decisions > 0, "the optimizer must keep deciding: {r:?}");
    }
    // The sweep must actually exercise every rung: clean convergence,
    // recovered corruption, transport restarts, and a typed degraded
    // end state.
    assert!(rows.iter().any(|r| r.scenario == "clean" && r.converged));
    assert!(rows
        .iter()
        .any(|r| r.corrupted > 0 && r.recoverable && r.converged));
    assert!(rows.iter().any(|r| r.restarts > 0));
    assert!(rows.iter().any(|r| r.stalls > 0));
    let degraded: Vec<_> = rows.iter().filter(|r| !r.recoverable).collect();
    assert!(!degraded.is_empty());
    for r in degraded {
        assert!(!r.quarantined.is_empty(), "{r:?}");
        assert!(r.quarantine_matches_injection, "{r:?}");
        assert!(!r.converged, "poisoned groups cannot converge: {r:?}");
    }
}
