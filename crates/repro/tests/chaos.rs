//! The chaos acceptance criteria: sweep the seeded fault plans over the
//! NL campaign and hold the degradation ladder's invariants — no panic,
//! no deadlock, recoverable runs bit-identical to the clean one-shot
//! fit, unrecoverable runs quarantined exactly on the injected groups,
//! and no decision ever backed by an untrusted model.

use etm_core::faults::FaultPlan;
use etm_core::plan::MeasurementPlan;
use etm_core::stream::StreamConfig;
use etm_repro::chaos::{chaos_scenarios, chaos_snapshot_trace, chaos_suite, run_sharded_chaos};
use etm_repro::stream::{banks_bit_equal, evaluation_space};
use etm_search::OnlineOptimizer;

#[test]
fn chaos_suite_holds_the_ladder_invariants() {
    let rows = chaos_suite(&MeasurementPlan::nl(), 3200);
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(r.ok, "scenario violated the ladder invariant: {r:?}");
        assert_eq!(r.untrusted_recommendations, 0, "{r:?}");
        assert!(r.decisions > 0, "the optimizer must keep deciding: {r:?}");
    }
    // The sweep must actually exercise every rung: clean convergence,
    // recovered corruption, transport restarts, and a typed degraded
    // end state.
    assert!(rows.iter().any(|r| r.scenario == "clean" && r.converged));
    assert!(rows
        .iter()
        .any(|r| r.corrupted > 0 && r.recoverable && r.converged));
    assert!(rows.iter().any(|r| r.restarts > 0));
    assert!(rows.iter().any(|r| r.stalls > 0));
    let degraded: Vec<_> = rows.iter().filter(|r| !r.recoverable).collect();
    assert!(!degraded.is_empty());
    for r in degraded {
        assert!(!r.quarantined.is_empty(), "{r:?}");
        assert!(r.quarantine_matches_injection, "{r:?}");
        assert!(!r.converged, "poisoned groups cannot converge: {r:?}");
    }
}

/// The batched serving path under chaos: replay the poison-group
/// scenario (a group quarantined mid-stream onto its §3.5 fallback),
/// then drive the memoized batched optimizer and its scalar
/// reference-eval twin over the identical published-snapshot sequence.
/// The decision logs must match bit-for-bit — generation,
/// recommendation, estimated time bits, switched and degraded flags —
/// through healthy, degrading, and degraded generations alike.
#[test]
fn batched_optimizer_matches_scalar_log_through_chaos() {
    let plan = MeasurementPlan::nl();
    let cfg = StreamConfig {
        batch_size: 16,
        shuffle_seed: Some(42),
        duplicate_every: 0,
        defer_every: 0,
        channel_cap: 4,
    };
    let fault = FaultPlan {
        seed: 17,
        corrupt_every: 1,
        target: Some((1, 1)),
        redeliver: false,
        ..FaultPlan::default()
    };
    let trace = chaos_snapshot_trace(&plan, &fault, cfg);
    assert!(trace.len() > 1, "the scenario must publish snapshots");
    let mut batched =
        OnlineOptimizer::new(evaluation_space(), 3200, 0.05).expect("valid optimizer inputs");
    let mut reference = OnlineOptimizer::new(evaluation_space(), 3200, 0.05)
        .expect("valid optimizer inputs")
        .with_reference_eval();
    for snap in &trace {
        let a = batched.observe(snap).cloned();
        let b = reference.observe(snap).cloned();
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.generation, b.generation);
                assert_eq!(a.recommended, b.recommended, "gen {}", a.generation);
                assert_eq!(
                    a.recommended_time.to_bits(),
                    b.recommended_time.to_bits(),
                    "gen {}",
                    a.generation
                );
                assert_eq!(a.switched, b.switched, "gen {}", a.generation);
                assert_eq!(a.degraded, b.degraded, "gen {}", a.generation);
                assert_eq!(a.best.config, b.best.config, "gen {}", a.generation);
                assert_eq!(
                    a.best.time.to_bits(),
                    b.best.time.to_bits(),
                    "gen {}",
                    a.generation
                );
                assert_eq!(a.best.evaluations, b.best.evaluations);
            }
            (None, None) => {}
            (a, b) => panic!("paths diverged: batched {a:?} vs reference {b:?}"),
        }
    }
    assert_eq!(batched.log().len(), reference.log().len());
    assert_eq!(batched.switches(), reference.switches());
    // The scenario actually degrades the engine: the trace ends with
    // the targeted group quarantined (the optimizer may still steer to
    // fully healthy configurations — that is the point of the penalty).
    let last = trace.last().expect("non-empty trace");
    assert!(
        !last.health().quarantined.is_empty(),
        "poison-group must quarantine the targeted group"
    );
}

/// Shard-merge determinism under fault injection: every chaos scenario
/// replayed at pool widths 1 and 4 must quarantine identical group
/// sets and — since both ends see the same faulted batch sequence —
/// publish bit-identical merged banks; recoverable scenarios must
/// additionally converge on the clean one-shot fit at both widths.
#[test]
fn chaos_scenarios_are_deterministic_across_pool_widths() {
    let plan = MeasurementPlan::nl();
    let cfg = StreamConfig {
        batch_size: 16,
        shuffle_seed: Some(42),
        duplicate_every: 0,
        defer_every: 0,
        channel_cap: 4,
    };
    for (name, fault) in chaos_scenarios() {
        let narrow = run_sharded_chaos(&plan, &fault, cfg, 1);
        let wide = run_sharded_chaos(&plan, &fault, cfg, 4);
        assert_eq!(
            narrow.quarantined, wide.quarantined,
            "{name}: quarantine sets must match across pool widths"
        );
        assert!(
            banks_bit_equal(narrow.snapshot.bank(), wide.snapshot.bank()),
            "{name}: merged banks must be bit-identical across pool widths"
        );
        assert_eq!(
            narrow.snapshot.health().composed_fallback,
            wide.snapshot.health().composed_fallback,
            "{name}: fallback bookkeeping must match across pool widths"
        );
        if narrow.recoverable {
            assert!(
                narrow.converged && wide.converged,
                "{name}: recoverable banks must converge at both widths"
            );
            assert!(narrow.quarantined.is_empty(), "{name}");
        } else {
            assert!(
                !narrow.quarantined.is_empty(),
                "{name}: unrecoverable faults must quarantine"
            );
        }
        // The transport rungs actually fire through the pool, too.
        if fault.kill_at.is_some() || fault.stall_at.is_some() {
            assert!(
                narrow.restarts > 0 && wide.restarts > 0,
                "{name}: the pool supervisor must restart the source"
            );
        }
        if fault.stall_at.is_some() {
            assert!(narrow.stalls > 0 && wide.stalls > 0, "{name}");
        }
    }
}
