//! Legacy proptest suites, kept verbatim behind the off-by-default
//! `proptest` feature. The hermetic build cannot resolve the registry
//! `proptest` crate, so enabling this feature also requires restoring
//! that dependency (see README "Offline / hermetic build").
#![cfg(feature = "proptest")]

//! Property-based tests of the discrete-event kernel's conservation and
//! ordering invariants.

use std::sync::{Arc, Mutex};

use etm_sim::Simulation;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulation ends exactly when the last process finishes:
    /// end = max over processes of its serial (hold + compute-alone)
    /// schedule when every process has a private CPU.
    #[test]
    fn private_cpus_end_time_is_max_schedule(
        schedules in prop::collection::vec(
            prop::collection::vec((0.0f64..0.5, 0.0f64..0.5), 1..5),
            1..6,
        )
    ) {
        let mut sim = Simulation::new();
        let mut expected: f64 = 0.0;
        for (i, sched) in schedules.iter().enumerate() {
            let cpu = sim.add_shared_resource(format!("cpu{i}"), 1.0);
            let total: f64 = sched.iter().map(|(h, w)| h + w).sum();
            expected = expected.max(total);
            let sched = sched.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                for (hold, work) in sched {
                    ctx.hold(hold);
                    ctx.compute(cpu, work);
                }
            });
        }
        let end = sim.run().unwrap();
        prop_assert!((end - expected).abs() < 1e-9, "end {end} vs expected {expected}");
    }

    /// Work conservation on a shared CPU: total served work equals the
    /// sum of submitted work, and the makespan is at least that sum
    /// (unit-speed resource, no idling because all jobs start at t=0).
    #[test]
    fn shared_cpu_makespan_equals_total_work(
        works in prop::collection::vec(0.01f64..1.0, 1..8)
    ) {
        let mut sim = Simulation::new();
        let cpu = sim.add_shared_resource("cpu", 1.0);
        let total: f64 = works.iter().sum();
        for (i, w) in works.iter().enumerate() {
            let w = *w;
            sim.spawn(format!("w{i}"), move |ctx| ctx.compute(cpu, w));
        }
        let end = sim.run().unwrap();
        prop_assert!((end - total).abs() < 1e-6 * total.max(1.0),
            "makespan {end} vs total work {total}");
    }

    /// Processor sharing preserves completion ORDER by job size when all
    /// jobs arrive together.
    #[test]
    fn shared_cpu_smaller_jobs_finish_first(
        works in prop::collection::vec(0.01f64..1.0, 2..6)
    ) {
        let mut sim = Simulation::new();
        let cpu = sim.add_shared_resource("cpu", 1.0);
        let finish: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        for (i, w) in works.iter().enumerate() {
            let w = *w;
            let finish = Arc::clone(&finish);
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.compute(cpu, w);
                finish.lock().unwrap().push((i, ctx.now()));
            });
        }
        sim.run().unwrap();
        let finish = finish.lock().unwrap();
        for (i, ti) in finish.iter() {
            for (j, tj) in finish.iter() {
                if works[*i] < works[*j] - 1e-12 {
                    prop_assert!(ti <= tj,
                        "job {i} ({}) finished after job {j} ({})", works[*i], works[*j]);
                }
            }
        }
    }

    /// FIFO mailboxes deliver in send order regardless of message count.
    #[test]
    fn mailbox_order_preserved(count in 1usize..50) {
        let mut sim = Simulation::new();
        let mb = sim.add_mailbox();
        sim.spawn("sender", move |ctx| {
            for i in 0..count {
                ctx.send(mb, i);
            }
        });
        sim.spawn("receiver", move |ctx| {
            for i in 0..count {
                let got: usize = ctx.recv(mb);
                assert_eq!(got, i);
            }
        });
        prop_assert!(sim.run().is_ok());
    }

    /// Bit-for-bit determinism for arbitrary workloads.
    #[test]
    fn arbitrary_workloads_are_deterministic(
        works in prop::collection::vec((0.0f64..0.3, 0.0f64..0.3), 2..6)
    ) {
        let run = |works: Vec<(f64, f64)>| -> f64 {
            let mut sim = Simulation::new();
            let cpu = sim.add_shared_resource("cpu", 1.3);
            let mb = sim.add_mailbox();
            let n = works.len();
            for (i, (h, w)) in works.into_iter().enumerate() {
                sim.spawn(format!("p{i}"), move |ctx| {
                    ctx.hold(h);
                    ctx.compute(cpu, w);
                    ctx.send(mb, i);
                });
            }
            sim.spawn("collector", move |ctx| {
                for _ in 0..n {
                    let _: usize = ctx.recv(mb);
                }
            });
            sim.run().unwrap()
        };
        let a = run(works.clone());
        let b = run(works);
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }
}
