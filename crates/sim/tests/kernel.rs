//! End-to-end tests of the discrete-event kernel: timing semantics,
//! processor sharing, message passing, determinism and deadlock detection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use etm_sim::Simulation;

#[test]
fn empty_simulation_finishes_at_zero() {
    let mut sim = Simulation::new();
    assert_eq!(sim.run().unwrap(), 0.0);
}

#[test]
fn hold_advances_time() {
    let mut sim = Simulation::new();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    sim.spawn("p", move |ctx| {
        ctx.hold(1.5);
        seen2.lock().unwrap().push(ctx.now());
        ctx.hold(0.5);
        seen2.lock().unwrap().push(ctx.now());
    });
    let end = sim.run().unwrap();
    assert!((end - 2.0).abs() < 1e-12);
    let seen = seen.lock().unwrap();
    assert!((seen[0] - 1.5).abs() < 1e-12);
    assert!((seen[1] - 2.0).abs() < 1e-12);
}

#[test]
fn parallel_holds_overlap() {
    let mut sim = Simulation::new();
    for _ in 0..10 {
        sim.spawn("p", |ctx| ctx.hold(3.0));
    }
    assert!((sim.run().unwrap() - 3.0).abs() < 1e-12);
}

#[test]
fn compute_on_uncontended_cpu_takes_work_over_speed() {
    let mut sim = Simulation::new();
    let cpu = sim.add_shared_resource("cpu", 2.0);
    sim.spawn("p", move |ctx| {
        ctx.compute(cpu, 6.0);
        assert!((ctx.now() - 3.0).abs() < 1e-12);
    });
    assert!((sim.run().unwrap() - 3.0).abs() < 1e-12);
}

#[test]
fn processor_sharing_two_jobs_double_duration() {
    let mut sim = Simulation::new();
    let cpu = sim.add_shared_resource("cpu", 1.0);
    for _ in 0..2 {
        sim.spawn("p", move |ctx| ctx.compute(cpu, 1.0));
    }
    assert!((sim.run().unwrap() - 2.0).abs() < 1e-12);
}

#[test]
fn processor_sharing_staggered_arrivals() {
    // Job A (2 units) starts at t=0; job B (3 units) at t=1.
    // A: 1 unit alone, then shares: finishes at t=3.
    // B: has consumed 1 unit by t=3, 2 remain alone: finishes at t=5.
    let mut sim = Simulation::new();
    let cpu = sim.add_shared_resource("cpu", 1.0);
    let a_done = Arc::new(Mutex::new(0.0));
    let a_done2 = Arc::clone(&a_done);
    sim.spawn("a", move |ctx| {
        ctx.compute(cpu, 2.0);
        *a_done2.lock().unwrap() = ctx.now();
    });
    sim.spawn("b", move |ctx| {
        ctx.hold(1.0);
        ctx.compute(cpu, 3.0);
        assert!((ctx.now() - 5.0).abs() < 1e-9, "b at {}", ctx.now());
    });
    let end = sim.run().unwrap();
    assert!((end - 5.0).abs() < 1e-9);
    assert!((*a_done.lock().unwrap() - 3.0).abs() < 1e-9);
}

#[test]
fn transfer_includes_latency_and_bandwidth() {
    let mut sim = Simulation::new();
    // 100 bytes/s link, 0.5 s latency: 50 bytes take 0.5 + 0.5 = 1.0 s.
    let link = sim.add_shared_resource("link", 100.0);
    sim.spawn("s", move |ctx| {
        ctx.transfer(link, 50.0, 0.5);
        assert!((ctx.now() - 1.0).abs() < 1e-12);
    });
    assert!((sim.run().unwrap() - 1.0).abs() < 1e-12);
}

#[test]
fn send_recv_rendezvous() {
    let mut sim = Simulation::new();
    let mb = sim.add_mailbox();
    sim.spawn("sender", move |ctx| {
        ctx.hold(2.0);
        ctx.send(mb, 42u64);
    });
    sim.spawn("receiver", move |ctx| {
        let v: u64 = ctx.recv(mb);
        assert_eq!(v, 42);
        // Receiver was blocked until the send at t=2.
        assert!((ctx.now() - 2.0).abs() < 1e-12);
    });
    sim.run().unwrap();
}

#[test]
fn send_before_recv_is_buffered() {
    let mut sim = Simulation::new();
    let mb = sim.add_mailbox();
    sim.spawn("sender", move |ctx| {
        ctx.send(mb, 1u32);
        ctx.send(mb, 2u32);
    });
    sim.spawn("receiver", move |ctx| {
        ctx.hold(5.0);
        let a: u32 = ctx.recv(mb);
        let b: u32 = ctx.recv(mb);
        assert_eq!((a, b), (1, 2));
        assert!((ctx.now() - 5.0).abs() < 1e-12);
    });
    sim.run().unwrap();
}

#[test]
fn ping_pong_alternates() {
    let mut sim = Simulation::new();
    let to_b = sim.add_mailbox();
    let to_a = sim.add_mailbox();
    sim.spawn("a", move |ctx| {
        for i in 0..100u32 {
            ctx.send(to_b, i);
            let echo: u32 = ctx.recv(to_a);
            assert_eq!(echo, i);
        }
    });
    sim.spawn("b", move |ctx| {
        for _ in 0..100 {
            let v: u32 = ctx.recv(to_b);
            ctx.send(to_a, v);
        }
    });
    sim.run().unwrap();
}

#[test]
fn deadlock_is_reported_with_process_names() {
    let mut sim = Simulation::new();
    let mb = sim.add_mailbox();
    sim.spawn("starved", move |ctx| {
        let _: u32 = ctx.recv(mb);
    });
    let err = sim.run().unwrap_err();
    assert_eq!(err.blocked, vec!["starved".to_string()]);
    assert!(err.to_string().contains("starved"));
}

#[test]
fn determinism_same_inputs_same_timings() {
    fn run_once() -> f64 {
        let mut sim = Simulation::new();
        let cpu = sim.add_shared_resource("cpu", 1.7);
        let link = sim.add_shared_resource("link", 1e6);
        let mb = sim.add_mailbox();
        for i in 0..8usize {
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.hold(0.01 * i as f64);
                ctx.compute(cpu, 0.3 + 0.05 * i as f64);
                ctx.transfer(link, 1e5, 1e-4);
                ctx.send(mb, i);
            });
        }
        sim.spawn("collector", move |ctx| {
            let mut sum = 0usize;
            for _ in 0..8 {
                sum += ctx.recv::<usize>(mb);
            }
            assert_eq!(sum, 28);
        });
        sim.run().unwrap()
    }
    let a = run_once();
    let b = run_once();
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "simulation must be bit-deterministic"
    );
}

#[test]
fn many_processes_share_one_cpu_fairly() {
    let n = 16;
    let mut sim = Simulation::new();
    let cpu = sim.add_shared_resource("cpu", 1.0);
    let finished = Arc::new(AtomicUsize::new(0));
    for _ in 0..n {
        let f = Arc::clone(&finished);
        sim.spawn("p", move |ctx| {
            ctx.compute(cpu, 1.0);
            f.fetch_add(1, Ordering::SeqCst);
        });
    }
    let end = sim.run().unwrap();
    assert!((end - n as f64).abs() < 1e-9, "end={end}");
    assert_eq!(finished.load(Ordering::SeqCst), n);
}

#[test]
fn zero_work_compute_completes_at_current_time() {
    let mut sim = Simulation::new();
    let cpu = sim.add_shared_resource("cpu", 1.0);
    sim.spawn("p", move |ctx| {
        ctx.hold(1.0);
        ctx.compute(cpu, 0.0);
        assert!((ctx.now() - 1.0).abs() < 1e-12);
    });
    sim.run().unwrap();
}

#[test]
#[should_panic(expected = "inside process")]
fn process_panics_propagate_to_run() {
    let mut sim = Simulation::new();
    sim.spawn("bad", |_ctx| panic!("inside process"));
    let _ = sim.run();
}

#[test]
fn drop_with_blocked_processes_does_not_hang() {
    let mut sim = Simulation::new();
    let mb = sim.add_mailbox();
    sim.spawn("parked", move |ctx| {
        let _: u32 = ctx.recv(mb);
    });
    let _ = sim.run(); // deadlocks, leaves the thread parked
    drop(sim); // must join the thread without hanging
}

#[test]
fn two_cpus_independent() {
    let mut sim = Simulation::new();
    let cpu0 = sim.add_shared_resource("cpu0", 1.0);
    let cpu1 = sim.add_shared_resource("cpu1", 1.0);
    sim.spawn("a", move |ctx| {
        ctx.compute(cpu0, 2.0);
        assert!((ctx.now() - 2.0).abs() < 1e-12);
    });
    sim.spawn("b", move |ctx| {
        ctx.compute(cpu1, 2.0);
        assert!((ctx.now() - 2.0).abs() < 1e-12);
    });
    assert!((sim.run().unwrap() - 2.0).abs() < 1e-12);
}

#[test]
fn stats_track_utilization_and_events() {
    let mut sim = Simulation::new();
    let cpu = sim.add_shared_resource("cpu", 1.0);
    sim.spawn("worker", move |ctx| {
        ctx.compute(cpu, 1.0);
        ctx.hold(1.0); // idle second
        ctx.compute(cpu, 2.0);
    });
    let end = sim.run().unwrap();
    assert!((end - 4.0).abs() < 1e-9);
    let stats = sim.stats();
    assert_eq!(stats.end_seconds, end);
    assert!(stats.events > 0);
    let cpu_stats = &stats.resources["cpu"];
    assert!((cpu_stats.busy_seconds - 3.0).abs() < 1e-9);
    assert!((cpu_stats.work_served - 3.0).abs() < 1e-9);
    assert_eq!(cpu_stats.jobs_completed, 2);
    let (name, util) = stats.bottleneck().unwrap();
    assert_eq!(name, "cpu");
    assert!((util - 0.75).abs() < 1e-9);
}

#[test]
fn derated_resource_serves_slower_end_to_end() {
    // Identical work on a clean and a 2x-derated CPU: the derated run
    // takes exactly twice the virtual time.
    let wall_of = |slowdown: Option<f64>| {
        let mut sim = Simulation::new();
        let cpu = sim.add_shared_resource("cpu", 1.0);
        if let Some(s) = slowdown {
            sim.derate_resource(cpu, s);
        }
        sim.spawn("p", move |ctx| ctx.compute(cpu, 3.0));
        sim.run().unwrap()
    };
    let clean = wall_of(None);
    let derated = wall_of(Some(2.0));
    assert!((clean - 3.0).abs() < 1e-12);
    assert!((derated - 6.0).abs() < 1e-12);
}

#[test]
fn derate_is_deterministic_under_contention() {
    // Two co-scheduled jobs on a derated CPU: processor sharing still
    // applies, on top of the slowdown, bit-identically across runs.
    let run_once = || {
        let mut sim = Simulation::new();
        let cpu = sim.add_shared_resource("cpu", 1.0);
        sim.derate_resource(cpu, 1.5);
        for i in 0..2 {
            sim.spawn(format!("p{i}"), move |ctx| ctx.compute(cpu, 1.0));
        }
        sim.run().unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.to_bits(), b.to_bits());
    assert!((a - 3.0).abs() < 1e-9, "2 jobs x 1.0 work at speed 1/1.5");
}
