//! The simulation kernel: event queue, process scheduling, cooperative
//! hand-off between the kernel thread and process threads.
//!
//! ## Scheduling discipline
//!
//! Every simulated process runs on its own OS thread, but the kernel
//! enforces *one runnable process at a time*: a process executes only
//! after the kernel hands it a `Go` token, and it returns control by
//! sending a [`Request`] and blocking on its private wake channel. Events
//! at equal virtual time are ordered by an insertion sequence number, so a
//! whole simulation is a deterministic function of its inputs — re-running
//! a measurement campaign always reproduces the same virtual timings,
//! which the estimation-model experiments rely on.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use etm_support::channel::{bounded, unbounded, Receiver, Sender};
use etm_support::sync::Mutex;

use crate::mailbox::{Mailbox, MailboxId, Payload};
use crate::resource::{ResourceId, SharedResource};
use crate::time::SimTime;

/// Identifies a simulated process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pid(pub(crate) usize);

/// What a process asks the kernel to do when it yields.
enum Request {
    /// Sleep for a delay, then wake.
    Hold(f64),
    /// Join a processor-sharing resource with `work` work-units and wake
    /// on completion.
    Compute { res: ResourceId, work: f64 },
    /// Post a message to a mailbox; the sender stays runnable.
    Send { mb: MailboxId, msg: Payload },
    /// Block until a message is available in the mailbox.
    Recv { mb: MailboxId },
    /// The process body returned normally.
    Finished,
    /// The process body panicked; the payload is re-thrown on the kernel
    /// thread so test assertions inside processes fail the test.
    Panicked(Box<dyn Any + Send>),
}

/// Wake-up token handed to a blocked process. Carries the received message
/// when the wake completes a `recv`.
enum Wake {
    Go,
    Delivery(Payload),
}

/// Marker payload used to unwind a process thread when the simulation is
/// dropped while the process is still blocked.
struct Cancelled;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EvKind {
    WakeProcess(Pid),
    ResourceFire { res: ResourceId, generation: u64 },
}

#[derive(PartialEq, Eq, Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EvKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// All simulated processes are blocked and no event can wake them.
///
/// Returned by [`Simulation::run`]; carries the names of the stuck
/// processes for diagnosis (e.g. a receive with no matching send).
#[derive(Debug)]
pub struct DeadlockError {
    /// Names of the processes still blocked when the event queue drained.
    pub blocked: Vec<String>,
    /// Virtual time at which the simulation stalled.
    pub at: SimTime,
}

impl fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation deadlocked at t={} with blocked processes: {}",
            self.at,
            self.blocked.join(", ")
        )
    }
}

impl std::error::Error for DeadlockError {}

struct ProcessRecord {
    name: String,
    go_tx: Sender<Wake>,
    handle: Option<JoinHandle<()>>,
    finished: bool,
}

/// Handle given to each process body for interacting with the simulation.
///
/// All methods that block in virtual time suspend the calling process and
/// resume it when the corresponding event fires.
pub struct Ctx {
    pid: Pid,
    clock: Arc<AtomicU64>,
    req_tx: Sender<(Pid, Request)>,
    go_rx: Receiver<Wake>,
}

impl Ctx {
    /// The process's own id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.clock.load(Ordering::Relaxed))
    }

    fn yield_with(&self, req: Request) -> Wake {
        if self.req_tx.send((self.pid, req)).is_err() {
            panic::panic_any(Cancelled);
        }
        match self.go_rx.recv() {
            Ok(wake) => wake,
            Err(_) => panic::panic_any(Cancelled),
        }
    }

    /// Suspends the process for `dt` virtual seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative or NaN.
    pub fn hold(&self, dt: f64) {
        assert!(
            dt >= 0.0 && !dt.is_nan(),
            "hold duration must be >= 0, got {dt}"
        );
        self.yield_with(Request::Hold(dt));
    }

    /// Performs `work` work-units on a processor-sharing resource and
    /// returns when the work completes. With `n` concurrent jobs on a
    /// resource of speed `s`, each progresses at `s/n` — the elapsed
    /// virtual time therefore depends on contention, exactly like a
    /// time-sliced CPU or a shared network link.
    pub fn compute(&self, res: ResourceId, work: f64) {
        self.yield_with(Request::Compute { res, work });
    }

    /// Transfers `bytes` over a shared link: a fixed `latency` hold
    /// followed by occupying the link's bandwidth (processor sharing with
    /// any concurrent transfers). The link's resource speed is interpreted
    /// as bytes per second.
    pub fn transfer(&self, link: ResourceId, bytes: f64, latency: f64) {
        if latency > 0.0 {
            self.hold(latency);
        }
        self.compute(link, bytes);
    }

    /// Posts a message to `mb` without blocking (delivery is instantaneous
    /// in virtual time; model transport cost with [`Ctx::transfer`]).
    pub fn send<T: Any + Send>(&self, mb: MailboxId, msg: T) {
        self.yield_with(Request::Send {
            mb,
            msg: Box::new(msg),
        });
    }

    /// Receives the next message from `mb`, blocking in virtual time until
    /// one is available.
    ///
    /// # Panics
    /// Panics if the message at the head of the mailbox is not a `T`;
    /// mixing payload types in one mailbox is a programming error.
    pub fn recv<T: Any + Send>(&self, mb: MailboxId) -> T {
        match self.yield_with(Request::Recv { mb }) {
            Wake::Delivery(payload) => match payload.downcast::<T>() {
                Ok(boxed) => *boxed,
                Err(_) => panic!(
                    "mailbox type mismatch: expected {}",
                    std::any::type_name::<T>()
                ),
            },
            Wake::Go => unreachable!("recv woken without a delivery"),
        }
    }
}

/// A discrete-event simulation: processes, resources, mailboxes and the
/// virtual clock. Build one, spawn processes, call [`Simulation::run`].
///
/// A `Simulation` is single-shot: `run` consumes the event horizon and the
/// value cannot be reused for a second run.
pub struct Simulation {
    clock: Arc<AtomicU64>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    resources: Vec<SharedResource>,
    mailboxes: Vec<Mutex<Mailbox>>,
    processes: Vec<ProcessRecord>,
    req_tx: Sender<(Pid, Request)>,
    req_rx: Receiver<(Pid, Request)>,
    /// Messages taken from a mailbox for a parked receiver whose wake
    /// event has been scheduled but not yet fired.
    pending_deliveries: Vec<(Pid, Payload)>,
    events_dispatched: u64,
    ran: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at virtual time zero.
    pub fn new() -> Self {
        install_cancel_hook();
        let (req_tx, req_rx) = unbounded();
        Simulation {
            clock: Arc::new(AtomicU64::new(0f64.to_bits())),
            queue: BinaryHeap::new(),
            seq: 0,
            resources: Vec::new(),
            mailboxes: Vec::new(),
            processes: Vec::new(),
            req_tx,
            req_rx,
            pending_deliveries: Vec::new(),
            events_dispatched: 0,
            ran: false,
        }
    }

    /// Registers a processor-sharing resource (CPU: `speed` = 1.0 for a
    /// unit-speed processor; link: `speed` = bytes per second).
    pub fn add_shared_resource(&mut self, name: impl Into<String>, speed: f64) -> ResourceId {
        let id = ResourceId(self.resources.len());
        self.resources.push(SharedResource::new(name, speed));
        id
    }

    /// Derates a registered resource: divides its service speed by
    /// `slowdown` (> 1 slows it down, e.g. a straggling CPU or a
    /// degraded link; fractional values model recovery). This is the
    /// fault-injection hook for execution-side chaos: the derated
    /// resource serves every subsequent job slower *through the normal
    /// processor-sharing discipline*, so contention, overlap, and
    /// completion ordering all reflect the fault — unlike post-hoc
    /// scaling of measured outputs. Jobs already in service keep the
    /// work served so far; any completion scheduled under the old rate
    /// is invalidated and recomputed.
    ///
    /// # Panics
    /// Panics if `slowdown` is not a finite positive factor.
    pub fn derate_resource(&mut self, id: ResourceId, slowdown: f64) {
        let now = self.now();
        let res = &mut self.resources[id.0];
        res.advance_to(now);
        res.derate(slowdown);
        self.reschedule_resource(id);
    }

    /// Registers a mailbox for message passing between processes.
    pub fn add_mailbox(&mut self) -> MailboxId {
        let id = MailboxId(self.mailboxes.len());
        self.mailboxes.push(Mutex::new(Mailbox::default()));
        id
    }

    /// Spawns a simulated process. The body runs on its own thread but is
    /// scheduled cooperatively by the kernel, starting at virtual time 0.
    ///
    /// # Panics
    /// Panics if called after [`Simulation::run`].
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        assert!(!self.ran, "cannot spawn after the simulation has run");
        let pid = Pid(self.processes.len());
        let (go_tx, go_rx) = bounded(1);
        let ctx = Ctx {
            pid,
            clock: Arc::clone(&self.clock),
            req_tx: self.req_tx.clone(),
            go_rx,
        };
        let name = name.into();
        let thread_name = name.clone();
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // Wait for the kernel's first Go before touching anything.
                if ctx.go_rx.recv().is_err() {
                    return; // simulation dropped before starting
                }
                let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                match result {
                    Ok(()) => {
                        let _ = ctx.req_tx.send((ctx.pid, Request::Finished));
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<Cancelled>().is_some() {
                            // Quietly exit: the simulation was torn down.
                        } else {
                            let _ = ctx.req_tx.send((ctx.pid, Request::Panicked(payload)));
                        }
                    }
                }
            })
            .expect("failed to spawn simulation process thread");
        self.processes.push(ProcessRecord {
            name,
            go_tx,
            handle: Some(handle),
            finished: false,
        });
        // Start event at t = 0.
        self.push_event(SimTime::ZERO, EvKind::WakeProcess(pid));
        pid
    }

    fn push_event(&mut self, time: SimTime, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }

    fn set_clock(&self, t: SimTime) {
        self.clock.store(t.secs().to_bits(), Ordering::Relaxed);
    }

    fn now(&self) -> SimTime {
        SimTime::new(f64::from_bits(self.clock.load(Ordering::Relaxed)))
    }

    /// Reschedules the completion event for a resource after a membership
    /// change.
    fn reschedule_resource(&mut self, res: ResourceId) {
        if let Some(t) = self.resources[res.0].next_completion() {
            let generation = self.resources[res.0].generation;
            // Guard against float drift placing the completion marginally
            // in the past.
            let t = t.max(self.now());
            self.push_event(t, EvKind::ResourceFire { res, generation });
        }
    }

    /// Resumes `pid` and services its requests until it blocks, finishes
    /// or panics.
    fn resume(&mut self, pid: Pid, wake: Wake) {
        if self.processes[pid.0].go_tx.send(wake).is_err() {
            // Thread already gone (only possible after a panic we have
            // since rethrown); nothing to do.
            return;
        }
        loop {
            let (from, req) = self
                .req_rx
                .recv()
                .expect("process hung up without Finished/Panicked");
            debug_assert_eq!(from, pid, "only the resumed process may issue requests");
            match req {
                Request::Hold(dt) => {
                    let at = self.now() + dt;
                    self.push_event(at, EvKind::WakeProcess(pid));
                    return;
                }
                Request::Compute { res, work } => {
                    let now = self.now();
                    self.resources[res.0].advance_to(now);
                    self.resources[res.0].add_job(pid, work);
                    self.reschedule_resource(res);
                    return;
                }
                Request::Send { mb, msg } => {
                    let woken = self.mailboxes[mb.0].lock().post(msg);
                    if let Some((waiter, payload)) = woken {
                        // Deliver at the current instant; the waiter runs
                        // after the sender yields for real.
                        self.pending_deliveries.push((waiter, payload));
                        let now = self.now();
                        self.push_event(now, EvKind::WakeProcess(waiter));
                    }
                    // Sender continues immediately.
                    if self.processes[pid.0].go_tx.send(Wake::Go).is_err() {
                        return;
                    }
                }
                Request::Recv { mb } => {
                    let taken = self.mailboxes[mb.0].lock().take_or_wait(pid);
                    match taken {
                        Some(payload) => {
                            if self.processes[pid.0]
                                .go_tx
                                .send(Wake::Delivery(payload))
                                .is_err()
                            {
                                return;
                            }
                        }
                        None => return, // parked in the mailbox
                    }
                }
                Request::Finished => {
                    self.processes[pid.0].finished = true;
                    if let Some(h) = self.processes[pid.0].handle.take() {
                        let _ = h.join();
                    }
                    return;
                }
                Request::Panicked(payload) => {
                    self.processes[pid.0].finished = true;
                    if let Some(h) = self.processes[pid.0].handle.take() {
                        let _ = h.join();
                    }
                    panic::resume_unwind(payload);
                }
            }
        }
    }

    /// Runs the simulation to completion.
    ///
    /// Returns the final virtual time once every process has finished, or
    /// a [`DeadlockError`] if the event queue drains while processes are
    /// still blocked.
    ///
    /// # Panics
    /// Re-raises any panic from a process body on the calling thread.
    pub fn run(&mut self) -> Result<f64, DeadlockError> {
        assert!(!self.ran, "Simulation::run may only be called once");
        self.ran = true;
        while let Some(Reverse(ev)) = self.queue.pop() {
            debug_assert!(ev.time >= self.now(), "event in the past");
            self.events_dispatched += 1;
            self.set_clock(ev.time);
            match ev.kind {
                EvKind::WakeProcess(pid) => {
                    if self.processes[pid.0].finished {
                        continue;
                    }
                    // A wake may complete a pending mailbox delivery.
                    let wake = match self.pending_deliveries.iter().position(|(p, _)| *p == pid) {
                        Some(i) => Wake::Delivery(self.pending_deliveries.remove(i).1),
                        None => Wake::Go,
                    };
                    self.resume(pid, wake);
                }
                EvKind::ResourceFire { res, generation } => {
                    if self.resources[res.0].generation != generation {
                        continue; // stale: membership changed since scheduling
                    }
                    let now = self.now();
                    self.resources[res.0].advance_to(now);
                    let done = self.resources[res.0].take_completed(true);
                    self.reschedule_resource(res);
                    for pid in done {
                        self.resume(pid, Wake::Go);
                    }
                }
            }
        }
        let blocked: Vec<String> = self
            .processes
            .iter()
            .filter(|p| !p.finished)
            .map(|p| p.name.clone())
            .collect();
        if blocked.is_empty() {
            Ok(self.now().secs())
        } else {
            Err(DeadlockError {
                blocked,
                at: self.now(),
            })
        }
    }
}

impl Simulation {
    /// Post-run statistics: final time, event count, per-resource usage.
    ///
    /// Meaningful after [`Simulation::run`]; resources are advanced to
    /// the final clock so busy time is complete.
    pub fn stats(&mut self) -> crate::stats::SimStats {
        let now = self.now();
        let mut resources = std::collections::BTreeMap::new();
        for r in &mut self.resources {
            r.advance_to(now);
            resources.insert(r.name().to_string(), r.stats);
        }
        crate::stats::SimStats {
            end_seconds: now.secs(),
            events: self.events_dispatched,
            resources,
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Closing the Go channels unblocks any parked process thread; its
        // next primitive call unwinds with `Cancelled`, which the thread
        // wrapper swallows.
        for p in &mut self.processes {
            let (dead_tx, _) = bounded(1);
            p.go_tx = dead_tx;
            if let Some(h) = p.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report for the internal `Cancelled` unwind marker and
/// delegates everything else to the previous hook.
fn install_cancel_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_none() {
                previous(info);
            }
        }));
    });
}
