//! Processor-sharing resources.
//!
//! A [`SharedResource`] serves all active jobs simultaneously at a rate of
//! `speed / n` work-units per second when `n` jobs are present. This is the
//! classical *processor sharing* queueing discipline and is the right model
//! for the two contended devices in the study:
//!
//! * a CPU running `Mi` time-sliced HPL processes (the paper's
//!   multiprocessing approach) — Linux's scheduler approximates fair
//!   sharing over the quanta relevant here;
//! * a NIC/link carrying several concurrent transfers.
//!
//! The resource is a pure state machine driven by the simulation kernel:
//! the kernel advances it to the current virtual time before every
//! membership change and asks for the next completion to schedule.

use crate::kernel::Pid;
use crate::time::SimTime;

/// Identifies a resource registered with a [`crate::Simulation`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResourceId(pub(crate) usize);

/// One in-service job on a processor-sharing resource.
#[derive(Debug)]
struct Job {
    pid: Pid,
    /// Work remaining, in work-units (seconds at full, uncontended speed
    /// for a unit-speed resource).
    remaining: f64,
    /// Completion tolerance derived from the job's initial size, so float
    /// drift never strands an almost-finished job.
    eps: f64,
}

/// A processor-sharing resource (CPU or network link).
#[derive(Debug)]
pub(crate) struct SharedResource {
    name: String,
    /// Work-units served per second when a single job is active.
    speed: f64,
    jobs: Vec<Job>,
    last_update: SimTime,
    /// Bumped on every membership change; stale completion events carry an
    /// old generation and are ignored by the kernel.
    pub(crate) generation: u64,
    /// Accumulated statistics (busy time, served work, completions).
    pub(crate) stats: crate::stats::ResourceStats,
}

impl SharedResource {
    pub(crate) fn new(name: impl Into<String>, speed: f64) -> Self {
        assert!(speed > 0.0, "resource speed must be positive");
        SharedResource {
            name: name.into(),
            speed,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            generation: 0,
            stats: crate::stats::ResourceStats::default(),
        }
    }

    #[allow(dead_code)] // diagnostic accessor, used by future tracing
    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    /// Divides the service speed by `slowdown` — the fault-injection
    /// hook behind [`crate::Simulation::derate_resource`]. The caller
    /// must have advanced the resource to the current virtual time
    /// first, so in-flight jobs keep the work they were already served;
    /// bumping the generation invalidates any completion event
    /// scheduled under the old rate.
    pub(crate) fn derate(&mut self, slowdown: f64) {
        assert!(
            slowdown.is_finite() && slowdown > 0.0,
            "slowdown must be a finite positive factor, got {slowdown} on {}",
            self.name
        );
        self.speed /= slowdown;
        assert!(
            self.speed > 0.0,
            "derated speed must stay positive on {}",
            self.name
        );
        self.generation += 1;
    }

    /// Current per-job service rate.
    fn rate(&self) -> f64 {
        debug_assert!(!self.jobs.is_empty());
        self.speed / self.jobs.len() as f64
    }

    /// Advances all in-service jobs to `now`, consuming remaining work.
    pub(crate) fn advance_to(&mut self, now: SimTime) {
        let dt = now - self.last_update;
        debug_assert!(dt >= -1e-12, "time went backwards: {dt}");
        if !self.jobs.is_empty() && dt > 0.0 {
            let served = self.rate() * dt;
            for job in &mut self.jobs {
                job.remaining -= served;
            }
            self.stats.busy_seconds += dt;
            self.stats.work_served += served * self.jobs.len() as f64;
        }
        self.last_update = now;
    }

    /// Adds a job of `work` work-units for `pid`. The caller must have
    /// called [`advance_to`](Self::advance_to) first.
    pub(crate) fn add_job(&mut self, pid: Pid, work: f64) {
        assert!(
            work >= 0.0 && work.is_finite(),
            "job work must be finite and non-negative, got {work} on {}",
            self.name
        );
        let eps = 1e-12 * work.max(1.0);
        self.jobs.push(Job {
            pid,
            remaining: work,
            eps,
        });
        self.generation += 1;
    }

    /// Removes and returns every job whose remaining work is (numerically)
    /// zero. The caller must have advanced the resource to `now` first.
    ///
    /// When `force_min` is set — used by the kernel on a *valid-generation*
    /// completion event, i.e. the job set is unchanged since the event was
    /// scheduled, so the minimum job is due exactly now — the
    /// minimum-remaining job is completed even if float drift left it a
    /// few ulps short. Without this, a long simulation can livelock:
    /// `served = rate·(t − last_update)` accumulates relative error
    /// proportional to the absolute time, the job never crosses the fixed
    /// tolerance, and the resource refires at `now + ε` forever.
    pub(crate) fn take_completed(&mut self, force_min: bool) -> Vec<Pid> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.jobs.len() {
            if self.jobs[i].remaining <= self.jobs[i].eps {
                done.push(self.jobs.remove(i).pid);
            } else {
                i += 1;
            }
        }
        if done.is_empty() && force_min && !self.jobs.is_empty() {
            let (arg_min, _) = self
                .jobs
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.remaining.total_cmp(&b.remaining))
                .expect("non-empty");
            done.push(self.jobs.remove(arg_min).pid);
        }
        if !done.is_empty() {
            self.generation += 1;
            self.stats.jobs_completed += done.len() as u64;
        }
        done
    }

    /// Virtual time at which the next job completes, if any job is active.
    pub(crate) fn next_completion(&self) -> Option<SimTime> {
        let min_remaining = self
            .jobs
            .iter()
            .map(|j| j.remaining.max(0.0))
            .fold(f64::INFINITY, f64::min);
        if min_remaining.is_finite() {
            Some(self.last_update + min_remaining / self.rate())
        } else {
            None
        }
    }

    /// Number of in-service jobs (used by tests and diagnostics).
    #[cfg(test)]
    pub(crate) fn load(&self) -> usize {
        self.jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> Pid {
        Pid(i)
    }

    #[test]
    fn single_job_completes_after_work_over_speed() {
        let mut r = SharedResource::new("cpu", 2.0);
        r.advance_to(SimTime::ZERO);
        r.add_job(pid(0), 4.0);
        let t = r.next_completion().unwrap();
        assert!((t.secs() - 2.0).abs() < 1e-12);
        r.advance_to(t);
        assert_eq!(r.take_completed(false), vec![pid(0)]);
        assert_eq!(r.load(), 0);
    }

    #[test]
    fn two_equal_jobs_share_fairly() {
        let mut r = SharedResource::new("cpu", 1.0);
        r.advance_to(SimTime::ZERO);
        r.add_job(pid(0), 1.0);
        r.add_job(pid(1), 1.0);
        let t = r.next_completion().unwrap();
        assert!((t.secs() - 2.0).abs() < 1e-12, "got {t:?}");
        r.advance_to(t);
        let mut done = r.take_completed(false);
        done.sort_by_key(|p| p.0);
        assert_eq!(done, vec![pid(0), pid(1)]);
    }

    #[test]
    fn late_arrival_slows_first_job() {
        let mut r = SharedResource::new("cpu", 1.0);
        r.advance_to(SimTime::ZERO);
        r.add_job(pid(0), 2.0);
        // At t=1, one unit of work remains on job 0; job 1 arrives.
        r.advance_to(SimTime::new(1.0));
        r.add_job(pid(1), 3.0);
        // Both at rate 1/2. Job 0 finishes after 2 more seconds (t=3).
        let t = r.next_completion().unwrap();
        assert!((t.secs() - 3.0).abs() < 1e-12, "got {t:?}");
        r.advance_to(t);
        assert_eq!(r.take_completed(false), vec![pid(0)]);
        // Job 1 has 3 - 1 = 2 units left, now alone: finishes at t=5.
        let t = r.next_completion().unwrap();
        assert!((t.secs() - 5.0).abs() < 1e-12, "got {t:?}");
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut r = SharedResource::new("cpu", 1.0);
        r.advance_to(SimTime::ZERO);
        r.add_job(pid(0), 0.0);
        let t = r.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
        r.advance_to(t);
        assert_eq!(r.take_completed(false), vec![pid(0)]);
    }

    #[test]
    fn generation_bumps_on_membership_changes() {
        let mut r = SharedResource::new("cpu", 1.0);
        let g0 = r.generation;
        r.advance_to(SimTime::ZERO);
        r.add_job(pid(0), 1.0);
        assert!(r.generation > g0);
        let g1 = r.generation;
        r.advance_to(SimTime::new(1.0));
        r.take_completed(false);
        assert!(r.generation > g1);
    }

    #[test]
    fn derate_slows_subsequent_service_without_losing_progress() {
        let mut r = SharedResource::new("cpu", 1.0);
        r.advance_to(SimTime::ZERO);
        r.add_job(pid(0), 2.0);
        // One unit served by t=1, then the CPU is derated 2x: the
        // remaining unit takes 2 more seconds.
        r.advance_to(SimTime::new(1.0));
        r.derate(2.0);
        let t = r.next_completion().unwrap();
        assert!((t.secs() - 3.0).abs() < 1e-12, "got {t:?}");
    }

    #[test]
    fn derate_composes_multiplicatively_and_bumps_generation() {
        let mut r = SharedResource::new("cpu", 4.0);
        let g0 = r.generation;
        r.derate(2.0);
        r.derate(2.0);
        assert!(r.generation > g0);
        r.advance_to(SimTime::ZERO);
        r.add_job(pid(0), 1.0);
        let t = r.next_completion().unwrap();
        assert!((t.secs() - 1.0).abs() < 1e-12, "4.0 speed derated to 1.0");
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn non_positive_derate_rejected() {
        let mut r = SharedResource::new("cpu", 1.0);
        r.derate(0.0);
    }

    #[test]
    fn no_jobs_means_no_completion() {
        let r = SharedResource::new("cpu", 1.0);
        assert!(r.next_completion().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        let _ = SharedResource::new("cpu", 0.0);
    }
}
