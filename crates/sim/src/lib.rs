//! # etm-sim — deterministic discrete-event simulation engine
//!
//! A process-oriented discrete-event simulator in the style of SimPy /
//! OMNeT++, purpose-built as the measurement substrate for the
//! execution-time estimation study (Kishimoto & Ichikawa, IPDPS 2004
//! reproduction). The paper measures HPL on physical hardware; this crate
//! provides the *virtual hardware clock* those measurements run against.
//!
//! ## Model
//!
//! A [`Simulation`] owns a virtual clock and an event queue. User code
//! spawns *processes* — ordinary Rust closures that run on dedicated OS
//! threads but are scheduled **cooperatively**: exactly one process runs at
//! any instant, and control returns to the kernel whenever the process
//! calls a blocking primitive on its [`Ctx`] handle. This yields fully
//! deterministic executions (identical event interleavings for identical
//! inputs) while letting simulation logic be written as straight-line code.
//!
//! Primitives:
//!
//! * [`Ctx::hold`] — advance this process's local time by a delay.
//! * [`Ctx::compute`] — occupy a processor-sharing CPU for a given amount
//!   of *work* (seconds at full speed); co-scheduled jobs slow each other
//!   down, which is exactly the multiprocessing overhead regime the paper
//!   studies.
//! * [`Ctx::transfer`] — move bytes across a processor-sharing link
//!   (latency + shared bandwidth), modelling NIC/switch contention.
//! * [`Ctx::send`] / [`Ctx::recv`] — typed mailbox rendezvous used by the
//!   message-passing layer in `etm-mpisim`.
//!
//! ## Example
//!
//! ```
//! use etm_sim::Simulation;
//!
//! let mut sim = Simulation::new();
//! let cpu = sim.add_shared_resource("cpu", 1.0);
//! for i in 0..2 {
//!     sim.spawn(format!("worker{i}"), move |ctx| {
//!         // Two jobs of 1.0s of work share one CPU: both finish at t=2.
//!         ctx.compute(cpu, 1.0);
//!     });
//! }
//! let end = sim.run().expect("no deadlock");
//! assert!((end - 2.0).abs() < 1e-9);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod mailbox;
mod resource;
pub mod stats;
mod time;

pub use kernel::{Ctx, DeadlockError, Pid, Simulation};
pub use mailbox::MailboxId;
pub use resource::ResourceId;
pub use stats::{ResourceStats, SimStats};
pub use time::SimTime;
