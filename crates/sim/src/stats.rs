//! Post-run statistics: per-resource busy time and utilization.
//!
//! The ablation experiments (block-size and broadcast-algorithm sweeps)
//! need to know *where* virtual time went — e.g. how saturated the
//! sender NIC was during a ring broadcast. Resources accumulate busy
//! time (any instant with ≥ 1 job in service) and served work; the
//! kernel snapshots them into a [`SimStats`] when the run ends.

use std::collections::BTreeMap;

/// Usage accounting for one resource over a whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceStats {
    /// Virtual seconds during which at least one job was in service.
    pub busy_seconds: f64,
    /// Total work-units served.
    pub work_served: f64,
    /// Number of jobs completed.
    pub jobs_completed: u64,
}

impl ResourceStats {
    /// Fraction of the run the resource was busy (0 when the run had
    /// zero length).
    pub fn utilization(&self, run_seconds: f64) -> f64 {
        if run_seconds <= 0.0 {
            0.0
        } else {
            (self.busy_seconds / run_seconds).min(1.0)
        }
    }
}

/// Statistics for a completed simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Final virtual time.
    pub end_seconds: f64,
    /// Total events dispatched by the kernel.
    pub events: u64,
    /// Per-resource usage, keyed by resource name.
    pub resources: BTreeMap<String, ResourceStats>,
}

impl SimStats {
    /// The busiest resource by utilization, if any resource saw work.
    pub fn bottleneck(&self) -> Option<(&str, f64)> {
        self.resources
            .iter()
            .filter(|(_, s)| s.busy_seconds > 0.0)
            .max_by(|a, b| a.1.busy_seconds.total_cmp(&b.1.busy_seconds))
            .map(|(name, s)| (name.as_str(), s.utilization(self.end_seconds)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let r = ResourceStats {
            busy_seconds: 5.0,
            work_served: 5.0,
            jobs_completed: 3,
        };
        assert_eq!(r.utilization(10.0), 0.5);
        assert_eq!(r.utilization(0.0), 0.0);
        // Clamped even under float slop.
        let r2 = ResourceStats {
            busy_seconds: 10.000001,
            ..r
        };
        assert_eq!(r2.utilization(10.0), 1.0);
    }

    #[test]
    fn bottleneck_picks_busiest() {
        let mut s = SimStats {
            end_seconds: 10.0,
            events: 5,
            resources: BTreeMap::new(),
        };
        assert!(s.bottleneck().is_none());
        s.resources.insert(
            "cpu".into(),
            ResourceStats {
                busy_seconds: 4.0,
                work_served: 4.0,
                jobs_completed: 1,
            },
        );
        s.resources.insert(
            "nic".into(),
            ResourceStats {
                busy_seconds: 9.0,
                work_served: 9.0,
                jobs_completed: 2,
            },
        );
        let (name, util) = s.bottleneck().unwrap();
        assert_eq!(name, "nic");
        assert!((util - 0.9).abs() < 1e-12);
    }
}
