//! Mailboxes: the kernel-level message-passing primitive.
//!
//! A mailbox is an unbounded FIFO of type-erased messages plus a FIFO of
//! processes blocked in `recv`. Delivery itself is instantaneous in virtual
//! time — transport *cost* (latency, bandwidth, contention) is modelled
//! separately by the sender occupying link resources before posting, which
//! is how `etm-mpisim` layers MPI semantics on top.

use std::any::Any;
use std::collections::VecDeque;

use crate::kernel::Pid;

/// Identifies a mailbox registered with a [`crate::Simulation`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MailboxId(pub(crate) usize);

/// Type-erased message payload.
pub(crate) type Payload = Box<dyn Any + Send>;

#[derive(Default)]
pub(crate) struct Mailbox {
    queue: VecDeque<Payload>,
    waiters: VecDeque<Pid>,
}

impl Mailbox {
    /// Posts a message. If a receiver is blocked, returns it paired with
    /// the message so the kernel can wake it; otherwise queues the message.
    pub(crate) fn post(&mut self, msg: Payload) -> Option<(Pid, Payload)> {
        if let Some(pid) = self.waiters.pop_front() {
            debug_assert!(
                self.queue.is_empty(),
                "waiters and queued messages cannot coexist"
            );
            Some((pid, msg))
        } else {
            self.queue.push_back(msg);
            None
        }
    }

    /// Attempts an immediate receive for `pid`; on failure the process is
    /// parked in FIFO order.
    pub(crate) fn take_or_wait(&mut self, pid: Pid) -> Option<Payload> {
        match self.queue.pop_front() {
            Some(msg) => Some(msg),
            None => {
                self.waiters.push_back(pid);
                None
            }
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_then_take_is_fifo() {
        let mut mb = Mailbox::default();
        assert!(mb.post(Box::new(1u32)).is_none());
        assert!(mb.post(Box::new(2u32)).is_none());
        let a = mb.take_or_wait(Pid(0)).unwrap();
        let b = mb.take_or_wait(Pid(0)).unwrap();
        assert_eq!(*a.downcast::<u32>().unwrap(), 1);
        assert_eq!(*b.downcast::<u32>().unwrap(), 2);
    }

    #[test]
    fn waiter_is_woken_by_post() {
        let mut mb = Mailbox::default();
        assert!(mb.take_or_wait(Pid(7)).is_none());
        let (pid, msg) = mb.post(Box::new(42u32)).unwrap();
        assert_eq!(pid, Pid(7));
        assert_eq!(*msg.downcast::<u32>().unwrap(), 42);
    }

    #[test]
    fn waiters_are_fifo() {
        let mut mb = Mailbox::default();
        assert!(mb.take_or_wait(Pid(1)).is_none());
        assert!(mb.take_or_wait(Pid(2)).is_none());
        let (first, _) = mb.post(Box::new(0u8)).unwrap();
        let (second, _) = mb.post(Box::new(0u8)).unwrap();
        assert_eq!(first, Pid(1));
        assert_eq!(second, Pid(2));
    }

    #[test]
    fn queued_counts_messages() {
        let mut mb = Mailbox::default();
        assert_eq!(mb.queued(), 0);
        mb.post(Box::new(()));
        assert_eq!(mb.queued(), 1);
    }
}
