//! Virtual-time representation.
//!
//! Simulated time is a non-negative `f64` number of seconds wrapped in a
//! newtype so that it cannot be confused with work amounts, byte counts or
//! wall-clock durations, and so that it can carry a total order (the raw
//! `f64` only offers `PartialOrd`).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since the start of the simulation.
///
/// `SimTime` is totally ordered; constructing one from a NaN panics, which
/// keeps the event queue's ordering invariant trivially valid.
#[derive(Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative: virtual time flows forward from
    /// zero only.
    pub fn new(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime(secs)
    }

    /// Seconds since the epoch as a raw float.
    pub fn secs(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is rejected at construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::new(1.5);
        let b = a + 2.5;
        assert_eq!(b.secs(), 4.0);
        assert_eq!(b - a, 2.5);
        let mut c = a;
        c += 0.5;
        assert_eq!(c.secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn zero_is_epoch() {
        assert_eq!(SimTime::ZERO.secs(), 0.0);
        assert_eq!(SimTime::ZERO, SimTime::new(0.0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::new(1.25)), "1.250000");
        assert_eq!(format!("{:?}", SimTime::new(0.5)), "0.500000s");
    }
}
