//! A deterministic property-test harness — the in-tree replacement for
//! proptest, driven by [`Rng64`].
//!
//! [`check`] runs a property over `cases` pseudo-random cases derived
//! from a fixed seed, so `cargo test` is fully reproducible offline. On
//! failure the panic message carries the case index and the per-case
//! seed; re-running the property at just that seed (`check(1,
//! case_seed, ..)` semantics via [`case_seed`]) reproduces the failure.
//! There is no shrinking: keep generators small-biased instead.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng64};

/// The seed the `i`-th case of a [`check`] run uses.
pub fn case_seed(run_seed: u64, case: usize) -> u64 {
    let mut s = run_seed;
    let mut last = splitmix64(&mut s);
    for _ in 0..case {
        last = splitmix64(&mut s);
    }
    last
}

/// Runs `property` over `cases` deterministic pseudo-random cases.
///
/// # Panics
/// Re-raises the property's panic, prefixed (via stderr) with the case
/// index and seed that produced it.
pub fn check(cases: usize, run_seed: u64, mut property: impl FnMut(&mut Rng64)) {
    let mut s = run_seed;
    for case in 0..cases {
        let case_seed = splitmix64(&mut s);
        let mut rng = Rng64::seed_from_u64(case_seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!(
                "property failed at case {case}/{cases} (run seed {run_seed}, case seed {case_seed})"
            );
            resume_unwind(payload);
        }
    }
}

/// Generator helpers commonly needed by the workspace's properties.
pub mod gen {
    use crate::rng::Rng64;

    /// A `Vec<f64>` of length `[min_len, max_len]` with entries in
    /// `[lo, hi)`.
    pub fn vec_f64(rng: &mut Rng64, min_len: usize, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = rng.range_inclusive(min_len, max_len);
        (0..len).map(|_| rng.range_f64(lo, hi)).collect()
    }

    /// A `Vec<usize>` of length `[min_len, max_len]` with entries in
    /// `[lo, hi]`.
    pub fn vec_usize(
        rng: &mut Rng64,
        min_len: usize,
        max_len: usize,
        lo: usize,
        hi: usize,
    ) -> Vec<usize> {
        let len = rng.range_inclusive(min_len, max_len);
        (0..len).map(|_| rng.range_inclusive(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case() {
        let mut count = 0;
        check(37, 1, |_| count += 1);
        assert_eq!(count, 37);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        check(5, 99, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        check(5, 99, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn case_seed_matches_check_order() {
        let mut seen = Vec::new();
        check(4, 7, |rng| seen.push(rng.clone()));
        for (i, rng) in seen.iter().enumerate() {
            assert_eq!(*rng, Rng64::seed_from_u64(case_seed(7, i)));
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        check(10, 3, |rng| {
            if rng.next_u64() % 3 == 0 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn generators_respect_bounds() {
        check(50, 11, |rng| {
            let v = gen::vec_f64(rng, 1, 8, -2.0, 3.0);
            assert!((1..=8).contains(&v.len()));
            assert!(v.iter().all(|x| (-2.0..3.0).contains(x)));
            let u = gen::vec_usize(rng, 0, 5, 10, 20);
            assert!(u.len() <= 5);
            assert!(u.iter().all(|x| (10..=20).contains(x)));
        });
    }
}
