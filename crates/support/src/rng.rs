//! Seedable, portable pseudo-random numbers: SplitMix64 for seeding and
//! hashing, xorshift128+ for the stream.
//!
//! The generators are deterministic functions of their seed on every
//! platform, which is what the measurement campaigns, the HPL test-matrix
//! generator and the property-test harness all rely on. Not
//! cryptographic.

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. Also usable as a 64-bit finalizer/hash by seeding with
/// the value to mix.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xorshift128+ generator seeded via SplitMix64 (the reference seeding
/// procedure, so a zero seed is fine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    s0: u64,
    s1: u64,
}

impl Rng64 {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        Rng64 { s0, s1 }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `usize` in `[0, n)` by rejection sampling (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        let n64 = n as u64;
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - u64::MAX % n64;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n64) as usize;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        lo + self.range_usize(hi - lo + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_usize_covers_all_residues() {
        let mut r = Rng64::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.range_usize(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
