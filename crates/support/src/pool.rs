//! Scoped data-parallelism over `std::thread` — the rayon subset the
//! linear-algebra kernels need, plus a small job-queue [`ThreadPool`].

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::channel::{unbounded, Sender};
use crate::sync::Mutex;

/// The number of worker threads parallel helpers use: the machine's
/// available parallelism, or 1 when that cannot be determined.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to consecutive `chunk_len`-sized chunks of `data` (last
/// chunk may be shorter), fanning the chunks out over scoped worker
/// threads. `f` receives the chunk index and the chunk. Equivalent to
/// `data.chunks_mut(chunk_len).enumerate().for_each(...)` but parallel;
/// a panic in any chunk propagates to the caller.
///
/// # Panics
/// Panics if `chunk_len == 0`, and re-raises panics from `f`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let nchunks = data.len().div_ceil(chunk_len);
    let threads = num_threads().min(nchunks);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let (tx, rx) = unbounded();
    for pair in data.chunks_mut(chunk_len).enumerate() {
        // The receiver outlives this loop, so the send cannot fail.
        let _ = tx.send(pair);
    }
    drop(tx);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                while let Ok((i, chunk)) = rx.recv() {
                    f(i, chunk);
                }
            });
        }
    });
}

/// Maps `f` over `items` on `threads` scoped worker threads, returning
/// the results **in item order** regardless of how the workers were
/// scheduled. Jobs are distributed through the in-tree mpmc channel
/// (whichever worker is free pulls the next item) and results flow back
/// tagged with their index, so the output is deterministic: for a pure
/// `f`, `par_map(items, t, f)` is bit-identical for every `t`.
///
/// `f` receives the item index and the item. With `threads == 1` (or a
/// single item) the map runs inline on the caller's thread.
///
/// # Panics
/// Panics if `threads == 0`, and re-raises panics from `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker");
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let (job_tx, job_rx) = unbounded();
    for pair in items.iter().enumerate() {
        // The receivers live for the whole scope below, so the send
        // cannot fail.
        let _ = job_tx.send(pair);
    }
    drop(job_tx);
    let (res_tx, res_rx) = unbounded();
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    std::thread::scope(|s| {
        let f = &f;
        let job_rx = &job_rx;
        let first_panic = &first_panic;
        for _ in 0..threads {
            let res_tx = res_tx.clone();
            s.spawn(move || {
                while let Ok((i, item)) = job_rx.recv() {
                    match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                        Ok(r) => {
                            let _ = res_tx.send((i, r));
                        }
                        Err(payload) => {
                            let mut slot = first_panic.lock();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            return;
                        }
                    }
                }
            });
        }
        drop(res_tx); // the workers' clones keep the channel open
    });
    if let Some(payload) = first_panic.lock().take() {
        resume_unwind(payload);
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    while let Some((i, r)) = res_rx.try_recv() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job sent exactly one result"))
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads draining a job queue.
///
/// Jobs run in submission order (picked up by whichever worker is
/// free). [`ThreadPool::join`] waits for every submitted job and
/// re-raises the first panic any job produced.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    first_panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
}

impl ThreadPool {
    /// Spawns `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0` or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let rx = Arc::new(rx);
        let first_panic: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let first_panic = Arc::clone(&first_panic);
                std::thread::Builder::new()
                    .name(format!("etm-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                                let mut slot = first_panic.lock();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
            first_panic,
        }
    }

    /// Submits a job. Never blocks.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            // Workers only exit once the sender is dropped, so the queue
            // is always open while `tx` exists.
            let _ = tx.send(Box::new(job));
        }
    }

    /// Waits for all submitted jobs to finish and shuts the pool down.
    ///
    /// # Panics
    /// Re-raises the first panic raised by any job.
    pub fn join(mut self) {
        self.shutdown();
        let payload = self.first_panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    fn shutdown(&mut self) {
        drop(self.tx.take()); // closes the queue; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Complete outstanding work even without an explicit join();
        // panics are swallowed here (Drop must not unwind).
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_chunks_matches_serial() {
        let mut par: Vec<u64> = (0..1000).collect();
        let mut ser = par.clone();
        for (i, c) in ser.chunks_mut(64).enumerate() {
            for v in c.iter_mut() {
                *v = *v * 3 + i as u64;
            }
        }
        par_chunks_mut(&mut par, 64, |i, c| {
            for v in c.iter_mut() {
                *v = *v * 3 + i as u64;
            }
        });
        assert_eq!(par, ser);
    }

    #[test]
    fn par_chunks_empty_and_tiny() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut one = vec![7u8];
        par_chunks_mut(&mut one, 8, |i, c| {
            assert_eq!(i, 0);
            c[0] += 1;
        });
        assert_eq!(one, vec![8]);
    }

    #[test]
    #[should_panic(expected = "chunk blew up")]
    fn par_chunks_propagates_panics() {
        let mut data = vec![0u8; 256];
        par_chunks_mut(&mut data, 16, |i, _| {
            if i == 7 {
                panic!("chunk blew up");
            }
        });
    }

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * v + 1).collect();
        for threads in [1, 2, 3, 8] {
            let got = par_map(&items, threads, |_, &v| v * v + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let none: Vec<u8> = par_map(&[] as &[u8], 4, |_, &v| v);
        assert!(none.is_empty());
        assert_eq!(par_map(&[9u8], 4, |i, &v| (i, v)), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "item 11 exploded")]
    fn par_map_propagates_panics() {
        let items: Vec<usize> = (0..64).collect();
        par_map(&items, 4, |_, &v| {
            if v == 11 {
                panic!("item 11 exploded");
            }
            v
        });
    }

    #[test]
    fn pool_completes_all_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(4);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    #[should_panic(expected = "job 13 failed")]
    fn pool_join_propagates_job_panic() {
        let pool = ThreadPool::new(2);
        for i in 0..20 {
            pool.execute(move || {
                if i == 13 {
                    panic!("job 13 failed");
                }
            });
        }
        pool.join();
    }
}
