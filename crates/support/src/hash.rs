//! Stable, dependency-free content hashing: 64-bit FNV-1a.
//!
//! `std::hash::DefaultHasher` makes no stability promise across Rust
//! releases, so anything persisted to disk (the audit's campaign cache
//! keys) hashes with this instead. FNV-1a is tiny, well-specified, and
//! plenty for cache addressing — these are content fingerprints, not
//! cryptographic digests.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64-bit hash of a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the FNV specification (Noll's test suite).
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a_64(b"plan-a"), fnv1a_64(b"plan-b"));
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
