//! Poison-free wrappers over `std::sync` locks with the parking_lot
//! calling convention (`lock()` returns the guard directly).
//!
//! The simulation kernel re-raises process panics on the kernel thread
//! *after* releasing its locks, so a poisoned std mutex would only ever
//! signal a panic that is already being propagated elsewhere; unwrapping
//! the poison error is therefore safe and keeps every call site free of
//! `unwrap()` noise (which the `xtask` lint bans in library code).

use std::fmt;
use std::sync::MutexGuard;

/// A mutual-exclusion lock that ignores poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Recovers the guard
    /// from a poisoned lock (see the module docs for why that is sound
    /// here).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn guards_concurrent_increments() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock still usable after a panic");
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(3);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 4);
    }
}
