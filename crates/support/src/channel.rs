//! Multi-producer multi-consumer channels over
//! `std::sync::{Mutex, Condvar}` — the crossbeam-channel subset the
//! simulation kernel, the thread-backed MPI fabric, and the streaming
//! ingestion layer need: cloneable senders *and* receivers, optional
//! capacity, disconnect detection on both ends, and a blocking
//! iterator adapter for drain loops.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` queued messages; `send`
/// blocks when full.
///
/// # Panics
/// Panics if `cap == 0` (rendezvous channels are not supported).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "capacity must be at least 1");
    channel(Some(cap))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A poisoned queue mutex only means some peer thread panicked
        // while holding it; the queue itself is still consistent (all
        // mutations are single push/pop calls).
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the unsent message back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a closed channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, closed channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`]: either nothing arrived
/// within the deadline (the senders may be stalled, not gone) or the
/// channel is empty and every sender is gone.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvTimeoutError {
    /// The deadline passed with the channel still empty but senders
    /// alive — the producer is stalled or slow, not disconnected.
    Timeout,
    /// The channel is empty and every [`Sender`] has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out on an open channel"),
            RecvTimeoutError::Disconnected => f.write_str("receiving on an empty, closed channel"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half; clone freely.
pub struct Sender<T>(Arc<Chan<T>>);

impl<T> Sender<T> {
    /// Enqueues a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    /// Returns the message if every [`Receiver`] has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.0.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = match self.0.not_full.wait(st) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.0.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake receivers parked in recv so they observe disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

/// The receiving half; clone for work-sharing consumers (each queued
/// message is delivered to exactly one receiver).
pub struct Receiver<T>(Arc<Chan<T>>);

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    ///
    /// # Errors
    /// Returns [`RecvError`] once the channel is empty and every
    /// [`Sender`] has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = match self.0.not_empty.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Dequeues the next message, blocking at most `timeout`.
    ///
    /// Distinguishes a *stalled* producer from a *gone* one — the
    /// property drain loops need to surface a hung source as a typed
    /// error instead of blocking forever.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when the deadline passes with at
    /// least one sender still alive; [`RecvTimeoutError::Disconnected`]
    /// once the channel is empty and every [`Sender`] is dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.0.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, wait) = match self.0.not_empty.wait_timeout(st, remaining) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            st = guard;
            if wait.timed_out() && st.queue.is_empty() {
                // Senders may still be alive: that is precisely a stall.
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Dequeues without blocking; `None` when the queue is currently
    /// empty (regardless of sender liveness).
    pub fn try_recv(&self) -> Option<T> {
        let v = self.0.lock().queue.pop_front();
        if v.is_some() {
            self.0.not_full.notify_one();
        }
        v
    }

    /// A blocking iterator over received messages; ends when the channel
    /// is empty and every [`Sender`] has been dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter(self)
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.lock().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T>(&'a Receiver<T>);

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.0.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // Wake senders parked on a full bounded channel.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_transfer() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2)); // blocks until recv
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn cloned_senders_all_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let txs: Vec<_> = (0..4).map(|_| tx.clone()).collect();
        drop(tx);
        let handles: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(i, t)| thread::spawn(move || t.send(i).unwrap()))
            .collect();
        let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), None);
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Some(9));
    }

    #[test]
    fn cloned_receivers_share_work_without_duplication() {
        let (tx, rx) = unbounded();
        let rxs: Vec<_> = (0..4).map(|_| rx.clone()).collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let handles: Vec<_> = rxs
            .into_iter()
            .map(|r| {
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = r.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Exactly-once delivery: every message to one consumer.
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_clone_keeps_channel_open_for_senders() {
        let (tx, rx) = unbounded::<u8>();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(7).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        drop(rx2);
        assert!(tx.send(8).is_err());
    }

    #[test]
    fn recv_timeout_delivers_available_messages() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(5));
    }

    #[test]
    fn recv_timeout_times_out_on_a_stalled_sender() {
        let (tx, rx) = unbounded::<u8>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // The sender was merely stalled: a late send still arrives.
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(1));
    }

    #[test]
    fn recv_timeout_reports_disconnect_not_timeout() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(60)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_cross_thread_send() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        // A fresh iter on the drained, closed channel yields nothing.
        assert_eq!(rx.iter().next(), None);
    }
}
