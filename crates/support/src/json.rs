//! A minimal JSON value, parser and writer, plus derive-free conversion
//! traits ([`ToJson`] / [`FromJson`]) and impl-generating macros.
//!
//! This replaces serde/serde_json for the workspace's needs: persisting
//! fitted estimators, measurement databases and cluster specs, and
//! round-tripping them in tests. Numbers are `f64` (every quantity in
//! the model pipeline is), and floats are written with Rust's
//! shortest-round-trip formatting so `parse(write(x)) == x` exactly.
//! Non-finite floats serialize as `null` — the model-validity audit bans
//! them from ever reaching a writer.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Errors from parsing or from [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up `name` in an object and converts it.
    ///
    /// # Errors
    /// Fails if `self` is not an object, the key is missing, or the
    /// value does not convert to `T`.
    pub fn field<T: FromJson>(&self, name: &str) -> Result<T, JsonError> {
        match self {
            Json::Obj(pairs) => match pairs.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::from_json(v)
                    .map_err(|e| JsonError::new(format!("field '{name}': {}", e.message))),
                None => Err(JsonError::new(format!("missing field '{name}'"))),
            },
            other => Err(JsonError::new(format!(
                "expected object with field '{name}', got {}",
                other.kind()
            ))),
        }
    }

    /// Like [`Json::field`], but a missing key yields `T::default()`
    /// (the analogue of `#[serde(default)]`).
    ///
    /// # Errors
    /// Fails if `self` is not an object or a present value does not
    /// convert.
    pub fn field_or_default<T: FromJson + Default>(&self, name: &str) -> Result<T, JsonError> {
        match self {
            Json::Obj(pairs) => match pairs.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::from_json(v)
                    .map_err(|e| JsonError::new(format!("field '{name}': {}", e.message))),
                None => Ok(T::default()),
            },
            other => Err(JsonError::new(format!(
                "expected object with field '{name}', got {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Conversion of a value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion of a [`Json`] tree back into a value.
pub trait FromJson: Sized {
    /// Reads the value from its JSON representation.
    ///
    /// # Errors
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes a value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, None, 0);
    out
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, Some(2), 0);
    out
}

/// Serializes a value in *canonical* form: compact, with every object's
/// keys sorted recursively. Two values whose JSON trees differ only in
/// object-key order canonicalize to the same string, which makes this
/// the right preimage for content hashing (the audit's campaign
/// fingerprints).
pub fn to_canonical_string<T: ToJson + ?Sized>(value: &T) -> String {
    let mut v = value.to_json();
    canonicalize(&mut v);
    let mut out = String::new();
    write_value(&v, &mut out, None, 0);
    out
}

/// Sorts object keys recursively (stable, so duplicate keys — which the
/// conversion traits never produce — keep their relative order).
fn canonicalize(v: &mut Json) {
    match v {
        Json::Arr(items) => items.iter_mut().for_each(canonicalize),
        Json::Obj(pairs) => {
            pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
            pairs.iter_mut().for_each(|(_, item)| canonicalize(item));
        }
        _ => {}
    }
}

/// Parses a string into a typed value.
///
/// # Errors
/// Returns a [`JsonError`] on malformed JSON or a shape mismatch.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

/// Parses a string into a [`Json`] tree.
///
/// # Errors
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => write_str(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the audit layer keeps these from models.
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 1e15 {
        // Integral values without the trailing ".0" Rust would print.
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        // Rust's shortest round-trip float formatting is valid JSON.
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Json::Null),
            Some(b't') => self.eat_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is at the 'u'.
        let hex4 = |p: &Self, at: usize| -> Result<u32, JsonError> {
            let slice = p
                .bytes
                .get(at..at + 4)
                .ok_or_else(|| p.err("truncated \\u escape"))?;
            let s = std::str::from_utf8(slice).map_err(|_| p.err("bad \\u escape"))?;
            u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))
        };
        let hi = hex4(self, self.pos + 1)?;
        self.pos += 5;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                let lo = hex4(self, self.pos + 2)?;
                self.pos += 6;
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

// ---------------------------------------------------- primitive impls

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) => Ok(*n),
            // A non-finite float was written as null; read it back as NaN
            // so the invariant checks can flag it rather than erroring
            // out of the parse.
            Json::Null => Ok(f64::NAN),
            other => Err(JsonError::new(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! int_json {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(n) if n.fract() == 0.0 => {
                        let min = <$ty>::MIN as f64;
                        let max = <$ty>::MAX as f64;
                        if *n >= min && *n <= max {
                            Ok(*n as $ty)
                        } else {
                            Err(JsonError::new(format!(
                                "{n} out of range for {}",
                                stringify!($ty)
                            )))
                        }
                    }
                    other => Err(JsonError::new(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )+};
}

int_json!(usize, u64, u32, i64, i32);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::new(format!("expected array of {N}, got {len}")))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::new(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<K: ToJson, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let pairs: Vec<(K, V)> = Vec::from_json(v)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Generates [`ToJson`] / [`FromJson`] for a struct with named fields —
/// the replacement for `#[derive(Serialize, Deserialize)]`.
///
/// ```
/// use etm_support::json_struct;
///
/// #[derive(PartialEq, Debug)]
/// struct Point { x: f64, y: f64 }
/// json_struct!(Point { x, y });
///
/// let p = Point { x: 1.5, y: -2.0 };
/// let text = etm_support::json::to_string(&p);
/// assert_eq!(etm_support::json::from_str::<Point>(&text).unwrap(), p);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: v.field(stringify!($field))?),+
                })
            }
        }
    };
}

/// Generates [`ToJson`] / [`FromJson`] for a fieldless enum, serialized
/// as the variant name string.
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Str(
                    match self {
                        $(Self::$variant => stringify!($variant)),+
                    }
                    .to_string(),
                )
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                let s: String = $crate::json::FromJson::from_json(v)?;
                match s.as_str() {
                    $(stringify!($variant) => Ok(Self::$variant),)+
                    other => Err($crate::json::JsonError::new(format!(
                        "unknown {} variant '{other}'",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_string()));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "tru", "\"unterminated", "1 2", "{1: 2}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            2e-9,
            6.02e23,
            -0.000123456789,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
        ] {
            let text = to_string(&x);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn non_finite_becomes_null_then_nan() {
        let text = to_string(&f64::NAN);
        assert_eq!(text, "null");
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn nested_collections_round_trip() {
        let v: Vec<(usize, Vec<f64>)> = vec![(1, vec![1.5, 2.5]), (2, vec![])];
        let text = to_string(&v);
        let back: Vec<(usize, Vec<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F980}control\u{1}".to_string();
        let text = to_string(&s);
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v: String = from_str("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(v, "\u{1F980}");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::Obj(vec![
            ("a".to_string(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b".to_string(), Json::Obj(vec![])),
        ]);
        let text = to_string_pretty(&v);
        assert!(text.contains('\n'));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn option_and_map() {
        let mut m = BTreeMap::new();
        m.insert(3usize, Some(1.25f64));
        m.insert(7usize, None);
        let text = to_string(&m);
        let back: BTreeMap<usize, Option<f64>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn canonical_form_ignores_key_order() {
        let a =
            parse("{\"x\": 1, \"y\": {\"b\": 2, \"a\": [true, {\"q\": 1, \"p\": 2}]}}").unwrap();
        let b =
            parse("{\"y\": {\"a\": [true, {\"p\": 2, \"q\": 1}], \"b\": 2}, \"x\": 1}").unwrap();
        assert_ne!(a, b, "trees differ in key order");
        assert_eq!(to_canonical_string(&a), to_canonical_string(&b));
        // Canonical output is itself valid JSON with the same content.
        assert_eq!(
            parse(&to_canonical_string(&a)).unwrap(),
            parse(&to_canonical_string(&b)).unwrap()
        );
    }

    #[test]
    fn canonical_form_distinguishes_values() {
        let a = parse("{\"x\": 1}").unwrap();
        let b = parse("{\"x\": 2}").unwrap();
        assert_ne!(to_canonical_string(&a), to_canonical_string(&b));
    }

    #[test]
    fn integer_bounds_checked() {
        assert!(from_str::<usize>("-1").is_err());
        assert!(from_str::<usize>("1.5").is_err());
        assert_eq!(from_str::<usize>("42").unwrap(), 42);
    }
}
