//! # etm-support — the workspace's zero-dependency substrate
//!
//! Everything here exists so the rest of the workspace can build with an
//! empty cargo registry and no network: a seedable PRNG ([`rng`]), a
//! minimal JSON value/parser/writer with derive-free conversion traits
//! ([`json`]), mpsc-style channels ([`channel`]), a poison-free
//! [`sync::Mutex`], a scoped thread pool with an order-preserving
//! [`pool::par_map`], stable FNV-1a content hashing ([`hash`]) and a
//! deterministic property-test harness ([`prop`]).
//!
//! The `cargo xtask check` hermeticity lint enforces that no crate in the
//! workspace reintroduces a registry dependency; this crate is what they
//! use instead.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod hash;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod sync;
