//! Integration tests for the etm-support substrate: PRNG determinism
//! across runs, JSON round-trips through the macro-generated impls, and
//! thread-pool completion/panic semantics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use etm_support::json::{self, FromJson, Json, ToJson};
use etm_support::pool::ThreadPool;
use etm_support::rng::Rng64;
use etm_support::{json_enum, json_struct};

/// The PRNG must produce the same stream on every run and platform:
/// these are the first outputs of seed 42, frozen at the time the
/// generator was written. If this test fails, persisted seeds across
/// the workspace (HPL matrices, measurement campaigns, property cases)
/// silently change meaning.
#[test]
fn prng_stream_is_frozen_across_runs() {
    let mut rng = Rng64::seed_from_u64(42);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            12618900322348487378,
            13639555000553200875,
            10127226059668577270,
            6068671050346012240,
        ]
    );
}

#[test]
fn prng_same_seed_same_f64_stream() {
    let mut a = Rng64::seed_from_u64(7);
    let mut b = Rng64::seed_from_u64(7);
    for _ in 0..1000 {
        assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
    }
}

#[derive(Clone, Debug, PartialEq)]
struct Report {
    title: String,
    kind: ReportKind,
    coefficients: Vec<[f64; 3]>,
    condition: Option<f64>,
    rows: Vec<(usize, f64)>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum ReportKind {
    Fitted,
    Composed,
}

json_struct!(Report {
    title,
    kind,
    coefficients,
    condition,
    rows
});
json_enum!(ReportKind { Fitted, Composed });

#[test]
fn report_like_struct_roundtrips_compact_and_pretty() {
    let r = Report {
        title: "N-T models (3) \"quoted\"\nline2".to_string(),
        kind: ReportKind::Composed,
        coefficients: vec![
            [1e-9, -2.5e-4, 0.1],
            [f64::MIN_POSITIVE, 1.0 / 3.0, 6.02e23],
        ],
        condition: None,
        rows: vec![(400, 1.25), (6400, 981.5)],
    };
    for text in [json::to_string(&r), json::to_string_pretty(&r)] {
        let back: Report = json::from_str(&text).expect("parse back");
        assert_eq!(back, r);
    }
}

#[test]
fn json_tree_survives_reparse() {
    let tree = Json::Obj(vec![
        (
            "entries".to_string(),
            Json::Arr(vec![Json::Num(1.5), Json::Null]),
        ),
        ("name".to_string(), Json::Str("αβ\u{1F980}".to_string())),
    ]);
    let text = json::to_string(&tree);
    assert_eq!(json::parse(&text).expect("reparse"), tree);
}

#[test]
fn missing_field_is_reported_by_name() {
    let err = json::from_str::<Report>("{\"title\": \"x\"}").unwrap_err();
    assert!(err.message.contains("kind"), "{err}");
}

#[test]
fn pool_completes_every_job_before_join_returns() {
    let done = Arc::new(AtomicUsize::new(0));
    let pool = ThreadPool::new(3);
    for _ in 0..500 {
        let done = Arc::clone(&done);
        pool.execute(move || {
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    pool.join();
    assert_eq!(done.load(Ordering::SeqCst), 500);
}

#[test]
fn pool_propagates_panics_but_still_runs_other_jobs() {
    let done = Arc::new(AtomicUsize::new(0));
    let pool = ThreadPool::new(2);
    for i in 0..50 {
        let done = Arc::clone(&done);
        pool.execute(move || {
            if i == 25 {
                panic!("deliberate failure");
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join()));
    assert!(result.is_err(), "join must re-raise the job panic");
    assert_eq!(done.load(Ordering::SeqCst), 49, "other jobs still ran");
}

/// `FromJson` consumers see numbers written by `ToJson` bit-exactly.
#[test]
fn f64_round_trip_is_bit_exact_over_random_values() {
    let mut rng = Rng64::seed_from_u64(2024);
    for _ in 0..2000 {
        let x = f64::from_bits(rng.next_u64());
        if !x.is_finite() {
            continue;
        }
        let text = json::to_string(&x);
        let back: f64 = json::from_str(&text).expect("parse");
        assert_eq!(back.to_bits(), x.to_bits(), "{text}");
    }
}

/// ToJson/FromJson are usable through trait objects/bounds the way the
/// workspace crates use them.
#[test]
fn trait_bounds_compose() {
    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: T) {
        let back: T = json::from_str(&json::to_string(&v)).expect("parse");
        assert_eq!(back, v);
    }
    roundtrip(vec![(1usize, vec![0.5f64]), (2, vec![])]);
    roundtrip(Some(false));
    roundtrip([[1.0f64; 2]; 3]);
}
