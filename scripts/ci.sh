#!/usr/bin/env bash
# The full CI gate, runnable offline with an empty cargo registry cache:
# tier-1 build + tests, then the in-tree static-analysis gate
# (hermeticity, source lints, clippy -D warnings + fmt --check, and the
# model-validity audit).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo xtask check
