#!/usr/bin/env bash
# Tiered CI gate, runnable offline with an empty cargo registry cache.
#
#   scripts/ci.sh --quick   fail-fast inner loop: fmt + source lints +
#                           hermeticity, then the tier-1 build + tests.
#   scripts/ci.sh           everything in --quick, plus clippy, the
#                           model-validity audit (warm-cached under
#                           target/etm-cache/), the fixed-seed chaos
#                           smoke (`repro chaos`, which exits non-zero
#                           on any degradation-ladder invariant breach
#                           and writes results/chaos_report.csv), and a
#                           bench smoke run
#                           that writes the substrates + streaming
#                           baselines, gates each against the per-commit
#                           store in results/bench/ via `cargo xtask
#                           bench-diff --latest`, and re-renders the
#                           median trend table (`cargo xtask
#                           bench-trend` -> results/bench/TREND.md).
#
# Stages run in cheapest-first order so a formatting slip fails in
# seconds, not after a full build. Per-stage wall times are printed in a
# summary at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: scripts/ci.sh [--quick]" >&2; exit 2 ;;
  esac
done

STAGE_NAMES=()
STAGE_TIMES=()

stage() {
  local name="$1"; shift
  echo
  echo "=== stage: $name ==="
  local t0 t1
  t0=$(date +%s)
  "$@"
  t1=$(date +%s)
  STAGE_NAMES+=("$name")
  STAGE_TIMES+=($((t1 - t0)))
}

summary() {
  echo
  echo "=== stage timing ==="
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-22s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}"
  done
}
trap summary EXIT

bench_smoke() {
  # Time the two suites fast enough for every CI run (substrate
  # microbenches + streaming-ingestion throughput) and gate each
  # against the per-commit baseline store: `bench-diff --latest`
  # compares to the newest entry under results/bench/ and then records
  # this run for the current commit. Finally re-render the
  # median-per-commit trend table (informational, never gates).
  local out_dir="$PWD/target/etm-bench"
  mkdir -p "$out_dir"
  local suite
  for suite in substrates streaming; do
    ETM_BENCH_OUT="$out_dir" ETM_BENCH_SAMPLES=5 \
      cargo bench -q -p etm-bench --bench "$suite"
    cargo xtask bench-diff --latest "$out_dir/BENCH_$suite.json"
  done
  cargo xtask bench-trend
}

# --- quick tier: cheap static checks first, then tier-1 -------------
stage "fmt"        cargo fmt --all --check
stage "lint"       cargo xtask check hermetic lint
stage "build"      cargo build --release
stage "test"       cargo test -q --workspace

if [ "$QUICK" = 1 ]; then
  echo
  echo "ci.sh --quick: green"
  exit 0
fi

# --- full tier ------------------------------------------------------
stage "clippy"     cargo clippy --workspace --all-targets -q -- -D warnings
stage "audit"      cargo xtask check audit
stage "chaos"      cargo run -q --release -p etm-repro --bin repro -- chaos
stage "bench"      bench_smoke

echo
echo "ci.sh: green"
