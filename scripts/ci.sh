#!/usr/bin/env bash
# Tiered CI gate, runnable offline with an empty cargo registry cache.
#
#   scripts/ci.sh --quick   fail-fast inner loop: fmt + source lints +
#                           hermeticity + the static concurrency
#                           analyzer (`cargo xtask analyze`), then the
#                           tier-1 build + tests.
#   scripts/ci.sh           everything in --quick (the analyze stage
#                           additionally writes its machine-readable
#                           report to results/analyze_report.json),
#                           plus clippy, the model-validity audit
#                           (warm-cached under target/etm-cache/), the
#                           fixed-seed chaos smoke (`repro chaos`,
#                           which exits non-zero on any
#                           degradation-ladder invariant breach and
#                           writes results/chaos_report.csv), and a
#                           bench smoke run that writes the substrates
#                           + streaming + shards + analyze + serving +
#                           optimizer baselines, gates each against the
#                           per-commit store in results/bench/ via
#                           `cargo xtask bench-diff --latest` (the
#                           thread-pool `shards`, reader-thread
#                           `serving`, workspace-sized `analyze`, and
#                           microsecond-scale `optimizer` suites get a
#                           wider 40% gate via repeated
#                           `--threshold` flags; everything else
#                           keeps the 25% default), and re-renders
#                           the median trend table (`cargo xtask
#                           bench-trend` -> results/bench/TREND.md).
#
# Both tiers write machine-readable per-stage wall times to
# results/ci_timing.json (stage name, seconds, tier) next to the
# human-readable summary, so CI dashboards can trend stage cost without
# scraping the log.
#
# ETM_NET_TESTS=1 additionally opts the full tier into the preserved
# legacy proptest suites (see proptest_legacy below); they need the
# registry `proptest` crate and so never run in the default offline
# gate.
#
# Stages run in cheapest-first order so a formatting slip fails in
# seconds, not after a full build. Per-stage wall times are printed in a
# summary at the end.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: scripts/ci.sh [--quick]" >&2; exit 2 ;;
  esac
done

STAGE_NAMES=()
STAGE_TIMES=()

stage() {
  local name="$1"; shift
  echo
  echo "=== stage: $name ==="
  local t0 t1
  t0=$(date +%s)
  "$@"
  t1=$(date +%s)
  STAGE_NAMES+=("$name")
  STAGE_TIMES+=($((t1 - t0)))
}

summary() {
  echo
  echo "=== stage timing ==="
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-22s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}"
  done
  # The same timings, machine-readable, for CI dashboards. Written on
  # every exit path so a failed run still records what it paid for.
  local tier="full"
  [ "$QUICK" = 1 ] && tier="quick"
  mkdir -p results
  {
    printf '{\n  "tier": "%s",\n  "stages": [\n' "$tier"
    for i in "${!STAGE_NAMES[@]}"; do
      printf '    {"stage": "%s", "wall_s": %s}' \
        "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}"
      if [ "$i" -lt $((${#STAGE_NAMES[@]} - 1)) ]; then printf ','; fi
      printf '\n'
    done
    printf '  ]\n}\n'
  } > results/ci_timing.json
  echo "stage timing -> results/ci_timing.json"
}
trap summary EXIT

bench_smoke() {
  # Time the suites fast enough for every CI run (substrate
  # microbenches, streaming-ingestion throughput, sharded-pool
  # throughput, the static analyzer itself, and the compiled serving
  # layer) and gate each against the per-commit baseline store:
  # `bench-diff --latest` compares to the newest entry under
  # results/bench/ and then records this run for the current commit.
  # The `shards` and `serving` suites time whole thread pools /
  # reader-thread fans per iteration and jitter with scheduler load,
  # the `analyze` suite times the analyzer over the live
  # workspace — a corpus that legitimately grows a few percent every
  # PR, compounding with that jitter — and the `optimizer` suite's
  # pruned searches finish in single-digit microseconds where a few
  # nanoseconds of scheduler noise is a whole percentage point, and
  # the `loopback` round-trip runs a whole discrete-event simulation
  # per iteration, so all five get a wider per-suite gate; the
  # repeated `--threshold` flags
  # are inert for every other suite (and bench-diff hard-errors if a
  # suite key is ever repeated). Finally re-render the
  # median-per-commit trend table (informational, never gates).
  local out_dir="$PWD/target/etm-bench"
  mkdir -p "$out_dir"
  local suite
  for suite in substrates streaming shards analyze serving optimizer loopback; do
    ETM_BENCH_OUT="$out_dir" ETM_BENCH_SAMPLES=5 \
      cargo bench -q -p etm-bench --bench "$suite"
    cargo xtask bench-diff --latest "$out_dir/BENCH_$suite.json" \
      --threshold shards=40 --threshold serving=40 --threshold analyze=40 \
      --threshold optimizer=40 --threshold loopback=40
  done
  cargo xtask bench-trend
}

analyze_gate() {
  # The static concurrency + policy analyzer. Both tiers gate on it;
  # the full tier also archives the machine-readable report.
  if [ "$QUICK" = 1 ]; then
    cargo xtask analyze
  else
    cargo xtask analyze --json results/analyze_report.json
  fi
}

proptest_legacy() {
  # Escape hatch for the preserved upstream proptest suites
  # (tests/proptest_legacy.rs behind each crate's off-by-default
  # `proptest` feature). They require the registry `proptest` crate,
  # so they cannot build in the default offline gate: set
  # ETM_NET_TESTS=1 on a networked machine (after restoring the
  # registry dependency in the five manifests) to run them.
  if [ "${ETM_NET_TESTS:-0}" = 1 ]; then
    local crate
    for crate in etm-cluster etm-hpl etm-linalg etm-lsq etm-sim; do
      cargo test -q -p "$crate" --features proptest --test proptest_legacy
    done
  else
    echo "skipped (set ETM_NET_TESTS=1 to opt in; needs the registry proptest crate)"
  fi
}

# --- quick tier: cheap static checks first, then tier-1 -------------
stage "fmt"        cargo fmt --all --check
stage "lint"       cargo xtask check hermetic lint
stage "analyze"    analyze_gate
stage "build"      cargo build --release
stage "test"       cargo test -q --workspace

if [ "$QUICK" = 1 ]; then
  echo
  echo "ci.sh --quick: green"
  exit 0
fi

# --- full tier ------------------------------------------------------
stage "clippy"     cargo clippy --workspace --all-targets -q -- -D warnings
stage "audit"      cargo xtask check audit
stage "chaos"      cargo run -q --release -p etm-repro --bin repro -- chaos
stage "loop"       cargo run -q --release -p etm-repro --bin repro -- loop
stage "bench"      bench_smoke
stage "proptest-legacy" proptest_legacy

echo
echo "ci.sh: green"
