//! §5 future work: configuration search at scale.
//!
//! The paper evaluates all 62 candidates exhaustively and notes that
//! larger clusters need search-space reduction or heuristics. This
//! example builds a three-kind, 44-CPU cluster where the full space has
//! tens of thousands of candidates, and compares exhaustive search with
//! the greedy and local-search heuristics.
//!
//! Run with: `cargo run --release --example large_cluster_search`

use hetero_etm::cluster::spec::{athlon_1333, pentium2_400, PeKind};
use hetero_etm::cluster::{
    ClusterSpec, CommLibProfile, Configuration, KindId, NetworkSpec, NodeSpec,
};
use hetero_etm::search::{exhaustive, greedy, local_search, ConfigSpace};

/// A synthetic "big iron" kind, 2x the Athlon.
fn opteron_like() -> PeKind {
    let mut k = athlon_1333();
    k.name = "Opteron".to_string();
    k.peak_flops *= 2.0;
    k
}

fn big_cluster() -> ClusterSpec {
    let kinds = vec![opteron_like(), athlon_1333(), pentium2_400()];
    let mem = 1024.0 * 1024.0 * 1024.0;
    let mut nodes = Vec::new();
    for i in 0..2 {
        nodes.push(NodeSpec {
            name: format!("opteron{i}"),
            kind: KindId(0),
            cpus: 2,
            memory_bytes: 2.0 * mem,
        });
    }
    for i in 0..8 {
        nodes.push(NodeSpec {
            name: format!("athlon{i}"),
            kind: KindId(1),
            cpus: 1,
            memory_bytes: mem,
        });
    }
    for i in 0..16 {
        nodes.push(NodeSpec {
            name: format!("p2-{i}"),
            kind: KindId(2),
            cpus: 2,
            memory_bytes: mem,
        });
    }
    ClusterSpec::new(
        kinds,
        nodes,
        NetworkSpec::fast_ethernet(),
        CommLibProfile::mpich122(),
    )
}

/// A closed-form objective standing in for the fitted estimator: balance
/// compute `W/Σrᵢ·effᵢ` against communication `α·P` and multiprocessing
/// overhead — cheap to evaluate, so exhaustive search stays tractable
/// for the comparison.
fn objective(spec: &ClusterSpec, cfg: &Configuration, n: usize) -> Result<f64, ()> {
    let w = 2.0 * (n as f64).powi(3) / 3.0;
    let p = cfg.total_processes() as f64;
    if p == 0.0 {
        return Err(());
    }
    // Slowest-PE time under equal distribution: each process does W/P at
    // its PE's rate, m processes share a PE.
    let mut worst: f64 = 0.0;
    for u in cfg.uses.iter().filter(|u| u.pes > 0) {
        let k = spec.kind(u.kind);
        let m = u.procs_per_pe as f64;
        let rate = k.peak_flops * 0.8 / (1.0 + k.mp_overhead * (m - 1.0));
        worst = worst.max(m * (w / p) / rate);
    }
    // Communication: per-process O(N²) broadcast volume over the wire.
    let comm = p * 8.0 * (n as f64).powi(2) / 2.0 / spec.network.bandwidth / p.sqrt();
    Ok(worst + comm)
}

fn main() {
    let spec = big_cluster();
    let n = 20_000;
    let space = ConfigSpace::new(&spec, vec![4, 4, 4]);
    println!(
        "cluster: {} CPUs over 3 kinds; configuration space = {} candidates",
        spec.nodes.iter().map(|nd| nd.cpus).sum::<usize>(),
        space.len()
    );

    let all = space.enumerate();
    let t0 = std::time::Instant::now();
    let ex = exhaustive(&all, |c| objective(&spec, c, n)).unwrap();
    let t_ex = t0.elapsed();
    println!(
        "\nexhaustive : {} -> {:.1} s  ({} evals, {:.1} ms)",
        ex.config.label(&spec),
        ex.time,
        ex.evaluations,
        t_ex.as_secs_f64() * 1e3
    );

    let t1 = std::time::Instant::now();
    let gr = greedy(&space, |c| objective(&spec, c, n)).unwrap();
    let t_gr = t1.elapsed();
    println!(
        "greedy     : {} -> {:.1} s  ({} evals, {:.1} ms, +{:.1}% vs optimal)",
        gr.config.label(&spec),
        gr.time,
        gr.evaluations,
        t_gr.as_secs_f64() * 1e3,
        100.0 * (gr.time - ex.time) / ex.time
    );

    let seed = Configuration {
        uses: vec![
            hetero_etm::cluster::KindUse {
                kind: KindId(0),
                pes: 4,
                procs_per_pe: 1,
            },
            hetero_etm::cluster::KindUse {
                kind: KindId(1),
                pes: 8,
                procs_per_pe: 1,
            },
            hetero_etm::cluster::KindUse {
                kind: KindId(2),
                pes: 32,
                procs_per_pe: 1,
            },
        ],
    };
    let ls = local_search(&space, seed, |c| objective(&spec, c, n)).unwrap();
    println!(
        "local      : {} -> {:.1} s  ({} evals, +{:.1}% vs optimal)",
        ls.config.label(&spec),
        ls.time,
        ls.evaluations,
        100.0 * (ls.time - ex.time) / ex.time
    );
}
