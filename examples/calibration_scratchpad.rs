//! Calibration scratchpad: quick end-to-end pipeline diagnostics (not
//! part of the published experiment set). Useful when tuning the
//! simulator or the fitting pipeline: prints single-config Gflops
//! curves, the fitted adjustment, M₁ series of raw/adjusted/measured
//! times, a per-kind Ta/Tc diagnosis, and a Table-4 analogue.
//!
//! Run with: `cargo run --release --example calibration_scratchpad`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration, KindId};
use hetero_etm::core::pipeline::build_estimator;
use hetero_etm::core::plan::{evaluation_configs, MeasurementPlan};
use hetero_etm::hpl::{simulate_hpl, HplParams};

fn main() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let nb = 64;

    // Quick sanity: single-config curves.
    for (label, cfg) in [
        ("Athlon x1", Configuration::p1m1_p2m2(1, 1, 0, 0)),
        ("Ath+P2x4", Configuration::p1m1_p2m2(1, 1, 4, 1)),
        ("P2 x5", Configuration::p1m1_p2m2(0, 0, 5, 1)),
        ("Ath(2)+P2x4", Configuration::p1m1_p2m2(1, 2, 4, 1)),
        ("Ath(4)+P2x4", Configuration::p1m1_p2m2(1, 4, 4, 1)),
    ] {
        print!("{label:>14}: ");
        for n in [1000usize, 3000, 5000, 7000, 10000] {
            let run = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(nb));
            print!("N={n}:{:.2}Gf ", run.gflops);
        }
        println!();
    }

    let t0 = std::time::Instant::now();
    let plan = MeasurementPlan::basic();
    let (est, db) = build_estimator(&spec, &plan, nb).expect("pipeline");
    println!(
        "\nBasic campaign: {} trials, {:.0} simulated-seconds total, built in {:.1}s wall",
        db.len(),
        db.total_cost(),
        t0.elapsed().as_secs_f64()
    );
    println!(
        "adjustment: scale {:.3} base {:.3} (M1 >= {})",
        est.adjustment.scale, est.adjustment.base_coeff, est.adjustment.min_m1
    );

    // Diagnostics: M1 series at the largest N, P2=8: raw vs adjusted vs measured.
    for n in [6400usize, 9600] {
        println!("\n  M1 series at N={n}, P2=8:");
        for m1 in 0..=6usize {
            let cfg = if m1 == 0 {
                Configuration::p1m1_p2m2(0, 0, 8, 1)
            } else {
                Configuration::p1m1_p2m2(1, m1, 8, 1)
            };
            let raw = est
                .estimate_raw(&cfg, n)
                .expect("diagnostic config is estimable");
            let adj = est
                .estimate(&cfg, n)
                .expect("diagnostic config is estimable");
            let meas = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(nb)).wall_seconds;
            println!("   M1={m1}: raw={raw:8.1} adj={adj:8.1} meas={meas:8.1}");
        }
    }

    // Per-kind diagnosis at N=4800, M1=3, sweeping P2.
    {
        let n = 4800usize;
        println!("\n  N={n}, M1=3 sweep of P2 (per-kind est vs meas):");
        for p2 in [3usize, 5, 7, 8] {
            let cfg = Configuration::p1m1_p2m2(1, 3, p2, 1);
            let p_total = cfg.total_processes();
            let a = est
                .bank
                .pt
                .get(&(0, 3))
                .expect("Basic plan fits kind 0 at M=3");
            let b = est
                .bank
                .pt
                .get(&(1, 1))
                .expect("Basic plan fits kind 1 at M=1");
            let run = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(nb));
            println!(
                "   P2={p2}: est A(ta={:6.1},tc={:6.1}) P2(ta={:6.1},tc={:6.1}) | meas A(ta={:6.1},tc={:6.1}) P2(ta={:6.1},tc={:6.1}) wall={:6.1}",
                a.ta(n, p_total), a.tc(n, p_total),
                b.ta(n, p_total), b.tc(n, p_total),
                run.ta_of_kind(KindId(0)).expect("kind 0 in run"), run.tc_of_kind(KindId(0)).expect("kind 0 in run"),
                run.ta_of_kind(KindId(1)).expect("kind 1 in run"), run.tc_of_kind(KindId(1)).expect("kind 1 in run"),
                run.wall_seconds,
            );
        }
    }

    // Table 4 analogue.
    let cfgs = evaluation_configs();
    println!("\n N     est-best (tau, tau_hat)      actual-best (T_hat)      errors");
    for &n in &plan.evaluation_ns {
        let mut best_est: Option<(usize, f64)> = None;
        for (i, c) in cfgs.iter().enumerate() {
            if let Ok(t) = est.estimate(c, n) {
                if best_est.is_none_or(|(_, bt)| t < bt) {
                    best_est = Some((i, t));
                }
            }
        }
        let (bi, tau) = best_est.expect("some evaluation config is estimable");
        let tau_hat = simulate_hpl(&spec, &cfgs[bi], &HplParams::order(n).with_nb(nb)).wall_seconds;
        let mut best_meas: Option<(usize, f64)> = None;
        for (i, c) in cfgs.iter().enumerate() {
            let t = simulate_hpl(&spec, c, &HplParams::order(n).with_nb(nb)).wall_seconds;
            if best_meas.is_none_or(|(_, bt)| t < bt) {
                best_meas = Some((i, t));
            }
        }
        let (mi, t_hat) = best_meas.expect("evaluation grid is non-empty");
        println!(
            "{n:>5}  {} tau={tau:.1} meas={tau_hat:.1} | {} T={t_hat:.1} | (tau-T)/T={:+.3} (tauh-T)/T={:+.3}",
            cfgs[bi].label(&spec),
            cfgs[mi].label(&spec),
            (tau - t_hat) / t_hat,
            (tau_hat - t_hat) / t_hat
        );
    }
}
