//! Quickstart: model a heterogeneous cluster, fit execution-time models
//! from a small simulated measurement campaign, and pick the best
//! configuration for a target problem size.
//!
//! Run with: `cargo run --release --example quickstart`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration};
use hetero_etm::core::pipeline::build_estimator;
use hetero_etm::core::plan::{evaluation_configs, MeasurementPlan};
use hetero_etm::hpl::{simulate_hpl, HplParams};
use hetero_etm::search::exhaustive;

fn main() {
    // 1. Describe the cluster (the paper's Table 1: one Athlon 1.33 GHz
    //    node + four dual-Pentium-II nodes on 100base-TX).
    let spec = paper_cluster(CommLibProfile::mpich122());
    println!("cluster: {} nodes, kinds:", spec.nodes.len());
    for k in &spec.kinds {
        println!("  {} @ {:.2} Gflops peak", k.name, k.peak_flops / 1e9);
    }

    // 2. Run the NL measurement campaign (Table 5: 4 problem sizes ×
    //    30 homogeneous configurations) on the simulated cluster and fit
    //    the N-T / P-T models.
    let plan = MeasurementPlan::nl();
    println!(
        "\nrunning the {:?} campaign: {} trials ...",
        plan.kind,
        plan.construction.len()
    );
    let (estimator, db) = build_estimator(&spec, &plan, 64).expect("model fitting");
    println!(
        "measured {} trials costing {:.0} simulated seconds; fit {} N-T and {} P-T models",
        db.len(),
        db.total_cost(),
        estimator.bank.nt.len(),
        estimator.bank.pt.len(),
    );

    // 3. Estimate the execution time of every candidate configuration
    //    for a target problem and pick the minimum.
    let n = 8000;
    let candidates = evaluation_configs();
    let best =
        exhaustive(&candidates, |cfg| estimator.estimate(cfg, n)).expect("estimation succeeds");
    println!(
        "\nN = {n}: estimated best configuration = {} (tau = {:.1} s, {} candidates)",
        best.config.label(&spec),
        best.time,
        best.evaluations
    );

    // 4. Sanity-check the choice against the simulator and against the
    //    naive all-PEs configuration.
    let measured = simulate_hpl(&spec, &best.config, &HplParams::order(n)).wall_seconds;
    let naive = Configuration::p1m1_p2m2(1, 1, 8, 1);
    let naive_t = simulate_hpl(&spec, &naive, &HplParams::order(n)).wall_seconds;
    println!(
        "measured: chosen config {measured:.1} s vs naive all-PEs (M1=1) {naive_t:.1} s \
         -> {:.0}% faster",
        100.0 * (naive_t - measured) / naive_t
    );
}
