//! Measurement budget vs model quality: the paper's Basic / NL / NS
//! trade-off (§4.2–4.3).
//!
//! Building models costs cluster time. The Basic campaign (9 problem
//! sizes) took ~6 h on the paper's hardware; NL (4 large sizes) ~3 h; NS
//! (4 *small* sizes) only ~10 min. This example shows why NS is a false
//! economy: models fit on small problems extrapolate disastrously.
//!
//! Run with: `cargo run --release --example measurement_budget`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::CommLibProfile;
use hetero_etm::core::pipeline::build_estimator;
use hetero_etm::core::plan::{evaluation_configs, MeasurementPlan};
use hetero_etm::hpl::{simulate_hpl, HplParams};
use hetero_etm::search::exhaustive;

fn main() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let candidates = evaluation_configs();
    let eval_ns = [1600usize, 3200, 6400, 9600];

    for plan in [MeasurementPlan::nl(), MeasurementPlan::ns()] {
        println!(
            "\n== {:?} campaign (construction N = {:?}) ==",
            plan.kind, plan.construction_ns
        );
        let (estimator, db) = build_estimator(&spec, &plan, 64).expect("fit");
        println!(
            "measurement cost: {:.0} simulated seconds (~{:.0} min)",
            db.total_cost(),
            db.total_cost() / 60.0
        );
        println!(
            "{:>6} {:>34} {:>9} {:>9} {:>10}",
            "N", "model's pick", "tau", "measured", "penalty"
        );
        for &n in &eval_ns {
            let best = exhaustive(&candidates, |c| estimator.estimate(c, n)).expect("estimate");
            let tau_hat = simulate_hpl(&spec, &best.config, &HplParams::order(n)).wall_seconds;
            // True optimum by brute-force measurement.
            let t_hat = candidates
                .iter()
                .map(|c| simulate_hpl(&spec, c, &HplParams::order(n)).wall_seconds)
                .fold(f64::INFINITY, f64::min);
            println!(
                "{n:>6} {:>34} {:>9.1} {:>9.1} {:>9.1}%",
                best.config.label(&spec),
                best.time,
                tau_hat,
                100.0 * (tau_hat - t_hat) / t_hat
            );
        }
    }
    println!(
        "\n-> NL pays ~26x the measurement cost of NS but picks optimally or\n\
         within a few percent; NS's small-N models pick the wrong\n\
         configuration family at every production size (the paper's Table 9\n\
         reports 28%-82% penalties on its hardware; see EXPERIMENTS.md)."
    );
}
