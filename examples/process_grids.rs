//! §3.1 extension: "our scheme is universally applicable to any other
//! process grid." This example runs the timed HPL on 2-D process grids
//! and shows why the paper's 1 × P layout is the right call on a
//! 100 Mb/s network — and what changes on gigabit.
//!
//! Run with: `cargo run --release --example process_grids`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration, NetworkSpec};
use hetero_etm::hpl::{simulate_hpl_grid, GridShape, HplParams};

fn main() {
    let cfg = Configuration::p1m1_p2m2(0, 0, 8, 1); // 8 Pentium-IIs
    let grids = [
        GridShape::one_by(8),
        GridShape { rows: 2, cols: 4 },
        GridShape { rows: 4, cols: 2 },
    ];

    for (name, network) in [
        (
            "100base-TX (the paper's network)",
            NetworkSpec::fast_ethernet(),
        ),
        ("1000base-SX (installed, unused)", NetworkSpec::gigabit()),
    ] {
        let mut spec = paper_cluster(CommLibProfile::mpich122());
        spec.network = network;
        println!("\n== {name} ==");
        println!("{:>6} {:>8} {:>8} {:>8}", "N", "1x8", "2x4", "4x2");
        for n in [1600usize, 3200, 6400] {
            let mut cells = Vec::new();
            for grid in grids {
                let run = simulate_hpl_grid(&spec, &cfg, &HplParams::order(n), grid);
                cells.push(format!("{:>7.1}s", run.wall_seconds));
            }
            println!("{n:>6} {} {} {}", cells[0], cells[1], cells[2]);
        }
    }
    println!(
        "\n-> flat grids keep pivot search and row interchanges local (one\n\
         process row), which a slow network rewards; squarer grids halve\n\
         the panel-broadcast volume, which pays off once the wire is fast.\n\
         HPL folklore (P <= Q for ethernet) falls out of the simulation."
    );
}
