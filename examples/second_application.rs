//! Beyond HPL (§5 future work): run the estimation pipeline on a second
//! application — a memory-bound 2-D Jacobi stencil — without changing a
//! line of the model code.
//!
//! Run with: `cargo run --release --example second_application`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration, KindId, KindUse};
use hetero_etm::core::measurement::{MeasurementDb, Sample, SampleKey};
use hetero_etm::core::pipeline::{Estimator, ModelBank};
use hetero_etm::stencil::numeric::{run_numeric_stencil, serial_jacobi};
use hetero_etm::stencil::{simulate_stencil, StencilParams};

fn main() {
    // 1. The application is real: the distributed numeric Jacobi agrees
    //    with a serial sweep.
    let n = 32;
    let iters = 20;
    let serial = serial_jacobi(n, iters, |r, c| {
        f64::from(r == 0 || c == 0 || r == n - 1 || c == n - 1)
    });
    let dist = run_numeric_stencil(n, iters, 4);
    let max_diff = serial
        .iter()
        .zip(&dist.grid)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("numeric check: distributed vs serial max |diff| = {max_diff:.2e}");
    assert!(max_diff < 1e-12);

    // 2. Measure homogeneous trials on the simulated cluster and fit the
    //    SAME models the HPL pipeline uses.
    let spec = paper_cluster(CommLibProfile::mpich122());
    let mut db = MeasurementDb::new();
    for &side in &[256usize, 512, 768, 1024] {
        for (kind, pes_list) in [(KindId(0), vec![1usize]), (KindId(1), vec![1, 2, 4, 8])] {
            for &pes in &pes_list {
                let key = SampleKey::new(kind, pes, 1);
                let cfg = Configuration {
                    uses: vec![KindUse {
                        kind,
                        pes,
                        procs_per_pe: 1,
                    }],
                };
                let run = simulate_stencil(&spec, &cfg, &StencilParams::side(side));
                db.record(
                    key,
                    Sample {
                        n: side,
                        ta: run.ta_of_kind(kind).unwrap(),
                        tc: run.tc_of_kind(kind).unwrap(),
                        wall: run.wall_seconds,
                        multi_node: run.nodes_used > 1,
                    },
                );
            }
        }
    }
    let est = Estimator::unadjusted(ModelBank::fit(&db, 0.85).expect("fit"));
    println!(
        "fitted {} N-T and {} P-T models from {} stencil trials",
        est.bank.nt.len(),
        est.bank.pt.len(),
        db.len()
    );

    // 3. How many Pentium-IIs should a stencil of side 640 use?
    let side = 640;
    println!("\n  P2s   estimated   measured");
    for p2 in [1usize, 2, 4, 6, 8] {
        let cfg = Configuration::p1m1_p2m2(0, 0, p2, 1);
        let e = est.estimate(&cfg, side).expect("estimate");
        let m = simulate_stencil(&spec, &cfg, &StencilParams::side(side)).wall_seconds;
        println!("  {p2:>3} {e:>10.2}s {m:>9.2}s");
    }
    println!(
        "\n-> unlike HPL, the latency-bound stencil stops scaling early on\n\
         100 Mb/s ethernet — and the model, fit only on measurements,\n\
         predicts the flattening without knowing the application."
    );
}
