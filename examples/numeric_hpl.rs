//! The numeric HPL: a *real* distributed LU solve over the thread
//! backend, verified with HPL's scaled residual — evidence that the
//! algorithm whose execution time the models predict is the genuine
//! article, not a mock.
//!
//! Run with: `cargo run --release --example numeric_hpl`

use hetero_etm::hpl::numeric::run_numeric;
use hetero_etm::hpl::{BcastAlgo, HplParams};

fn main() {
    println!(
        "{:>6} {:>6} {:>6} {:>10} {:>14} {:>8}",
        "N", "NB", "ranks", "bcast", "residual", "status"
    );
    for (n, nb, p, bcast) in [
        (256usize, 32usize, 1usize, BcastAlgo::Ring),
        (256, 32, 4, BcastAlgo::Ring),
        (384, 48, 6, BcastAlgo::Ring),
        (384, 48, 6, BcastAlgo::Binomial),
        (512, 64, 8, BcastAlgo::Ring),
    ] {
        let params = HplParams::order(n)
            .with_nb(nb)
            .with_bcast(bcast)
            .with_seed(7);
        let r = run_numeric(&params, p);
        println!(
            "{n:>6} {nb:>6} {p:>6} {:>10} {:>14.3e} {:>8}",
            match bcast {
                BcastAlgo::Ring => "ring",
                BcastAlgo::Binomial => "binomial",
            },
            r.residual.scaled,
            if r.residual.passes() { "PASS" } else { "FAIL" }
        );
        assert!(r.residual.passes(), "HPL residual check failed");
    }
    println!("\nall solves pass HPL's scaled-residual acceptance test (< 16).");
}
