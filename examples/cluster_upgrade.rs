//! The paper's motivating scenario (§1–2): you own a homogeneous
//! Pentium-II cluster and add one fast Athlon node. Running unmodified
//! HPL distributes work equally, so the Athlon idles at synchronization
//! — unless you invoke multiple processes on it.
//!
//! This example reproduces the Fig. 3 story: load imbalance, the
//! multiprocessing remedy, and how the best process count shifts with
//! problem size.
//!
//! Run with: `cargo run --release --example cluster_upgrade`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration};
use hetero_etm::hpl::{simulate_hpl, HplParams};

fn gflops(spec: &hetero_etm::cluster::ClusterSpec, cfg: &Configuration, n: usize) -> f64 {
    simulate_hpl(spec, cfg, &HplParams::order(n)).gflops
}

fn main() {
    let spec = paper_cluster(CommLibProfile::mpich122());

    println!("== Load imbalance (Fig 3a) ==");
    println!(
        "{:>8} {:>10} {:>14} {:>8}",
        "N", "Athlon x1", "Ath+P2x4 (eq)", "P2 x5"
    );
    for n in [2000usize, 4000, 6000, 8000, 10000] {
        let athlon = gflops(&spec, &Configuration::p1m1_p2m2(1, 1, 0, 0), n);
        let hetero = gflops(&spec, &Configuration::p1m1_p2m2(1, 1, 4, 1), n);
        let p2only = gflops(&spec, &Configuration::p1m1_p2m2(0, 0, 5, 1), n);
        println!("{n:>8} {athlon:>10.2} {hetero:>14.2} {p2only:>8.2}");
    }
    println!(
        "-> with equal distribution the upgraded cluster is no better than\n\
         the Pentium-IIs alone: the Athlon waits at synchronization."
    );

    println!("\n== Multiprocessing remedy (Fig 3b): n processes on the Athlon ==");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8}  best",
        "N", "n=1", "n=2", "n=3", "n=4"
    );
    for n in [1000usize, 3000, 5000, 8000, 10000] {
        let gs: Vec<f64> = (1..=4)
            .map(|m| gflops(&spec, &Configuration::p1m1_p2m2(1, m, 4, 1), n))
            .collect();
        let best = gs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i + 1)
            .unwrap();
        println!(
            "{n:>8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}  n={best}",
            gs[0], gs[1], gs[2], gs[3]
        );
    }
    println!(
        "-> the optimal process count grows with N: overheads dominate small\n\
         problems, load balance dominates large ones. Predicting this\n\
         crossover without measuring everything is what the estimation\n\
         model (see `quickstart`) is for."
    );
}
