//! Fitted models are plain data: persist an [`Estimator`] to JSON and
//! reload it, so the expensive measurement campaign runs once and the
//! configuration oracle ships as a small artifact.
//!
//! Run with: `cargo run --release --example model_persistence`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration};
use hetero_etm::core::pipeline::{build_estimator, Estimator};
use hetero_etm::core::plan::MeasurementPlan;

fn main() {
    let spec = paper_cluster(CommLibProfile::mpich122());

    // Fit once (the measurement campaign is the expensive part).
    println!("fitting models from the NS campaign (cheapest: ~12 simulated minutes) ...");
    let (estimator, db) = build_estimator(&spec, &MeasurementPlan::ns(), 64).expect("fit");
    println!(
        "campaign: {} trials, {:.0} simulated seconds",
        db.len(),
        db.total_cost()
    );

    // Persist.
    let json = hetero_etm::support::json::to_string_pretty(&estimator);
    let path = std::env::temp_dir().join("hetero-etm-estimator.json");
    std::fs::write(&path, &json).expect("write");
    println!(
        "saved estimator ({} N-T models, {} P-T models, {} bytes) to {}",
        estimator.bank.nt.len(),
        estimator.bank.pt.len(),
        json.len(),
        path.display()
    );

    // Reload and use — no cluster access required.
    let loaded: Estimator = hetero_etm::support::json::from_str(&json).expect("deserialize");
    let cfg = Configuration::p1m1_p2m2(1, 2, 8, 1);
    let n = 3200;
    let a = estimator.estimate(&cfg, n).expect("estimate");
    let b = loaded.estimate(&cfg, n).expect("estimate");
    assert_eq!(a.to_bits(), b.to_bits(), "round trip must be exact");
    println!(
        "reloaded estimator predicts {} at N={n}: {:.2} s (identical to the original)",
        cfg.label(&spec),
        b
    );
    std::fs::remove_file(&path).ok();
}
