//! The paper's central pitch, quantified: how much of a *rewritten*
//! application's benefit does the no-rewrite multiprocessing approach
//! recover?
//!
//! §2 positions the work against Kalinov & Lastovetsky and Beaumont et
//! al., who modify the application to give fast PEs proportionally more
//! data. This example runs all three strategies on the simulated cluster:
//! unmodified HPL, the paper's multiprocessing, and a speed-weighted
//! rewrite.
//!
//! Run with: `cargo run --release --example rewrite_vs_multiprocessing`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration};
use hetero_etm::hpl::{simulate_hpl, simulate_hpl_weighted, HplParams};

fn main() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    println!(
        "{:>6} {:>12} {:>18} {:>14} {:>10}",
        "N", "unmodified", "multiprocessing", "rewrite", "captured"
    );
    for n in [3200usize, 4800, 6400, 9600] {
        let params = HplParams::order(n);
        let equal =
            simulate_hpl(&spec, &Configuration::p1m1_p2m2(1, 1, 8, 1), &params).wall_seconds;
        let (best_m1, multi) = (1..=6usize)
            .map(|m1| {
                let t = simulate_hpl(&spec, &Configuration::p1m1_p2m2(1, m1, 8, 1), &params)
                    .wall_seconds;
                (m1, t)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let rewrite = simulate_hpl_weighted(&spec, &Configuration::p1m1_p2m2(1, 1, 8, 1), &params)
            .wall_seconds;
        let captured = 100.0 * (equal - multi) / (equal - rewrite);
        println!(
            "{n:>6} {equal:>11.1}s {multi:>12.1}s (M1={best_m1}) {rewrite:>13.1}s {captured:>9.0}%"
        );
    }
    println!(
        "\n-> the rewrite is the ceiling; multiprocessing closes most of the\n\
         gap at production sizes while leaving the application untouched —\n\
         the trade the paper argues for."
    );
}
