//! Why the communication library matters (§2, Figs. 1–2): NetPIPE-style
//! throughput measurement of two MPI library profiles, and the effect on
//! multiprocessing viability.
//!
//! Sasou et al. blamed the OS scheduler for multiprocessing's poor
//! performance; Kishimoto & Ichikawa traced it to MPICH-1.2.1's intra-node
//! path. This example reproduces that diagnosis on the simulated fabric.
//!
//! Run with: `cargo run --release --example netpipe_compare`

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration};
use hetero_etm::hpl::{simulate_hpl, HplParams};
use hetero_etm::mpisim::netpipe::{fig2_block_sizes, intra_node_sweep};

fn main() {
    println!("== Fig 2 analogue: intra-node throughput (two processes, one Athlon) ==");
    println!(
        "{:>10} {:>14} {:>14}",
        "block KiB", "MPICH-1.2.1", "MPICH-1.2.2"
    );
    let old = intra_node_sweep(
        &paper_cluster(CommLibProfile::mpich121()),
        &fig2_block_sizes(),
    );
    let new = intra_node_sweep(
        &paper_cluster(CommLibProfile::mpich122()),
        &fig2_block_sizes(),
    );
    for (o, n) in old.iter().zip(&new) {
        println!(
            "{:>10.0} {:>11.2} Gb {:>11.2} Gb",
            o.block_bytes / 1024.0,
            o.bits_per_sec / 1e9,
            n.bits_per_sec / 1e9
        );
    }

    println!("\n== Fig 1 analogue: multiprocessing HPL on one Athlon ==");
    println!(
        "{:>6} {:>22} {:>22}",
        "N", "1.2.1 (n=1 / n=4)", "1.2.2 (n=1 / n=4)"
    );
    for n in [1000usize, 3000, 5000, 7000] {
        let mut cells = Vec::new();
        for profile in [CommLibProfile::mpich121(), CommLibProfile::mpich122()] {
            let spec = paper_cluster(profile);
            let g1 = simulate_hpl(
                &spec,
                &Configuration::p1m1_p2m2(1, 1, 0, 0),
                &HplParams::order(n),
            )
            .gflops;
            let g4 = simulate_hpl(
                &spec,
                &Configuration::p1m1_p2m2(1, 4, 0, 0),
                &HplParams::order(n),
            )
            .gflops;
            cells.push(format!("{g1:.2} / {g4:.2}"));
        }
        println!("{n:>6} {:>22} {:>22}", cells[0], cells[1]);
    }
    println!(
        "\n-> under the 1.2.1 profile, 4 processes per CPU collapse (the panel\n\
         broadcast between co-resident processes crawls); under 1.2.2 the\n\
         overhead is modest — multiprocessing becomes a viable remedy."
    );
}
