//! The paper's §5 future work, executed: the estimation pipeline is
//! application-agnostic. Here the *same* `etm-core` machinery (N-T / P-T
//! models, binning, composition) is fit to measurements of a completely
//! different application — the memory-bound 2-D Jacobi stencil — and its
//! predictions are checked against the simulator.

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration, KindId, KindUse};
use hetero_etm::core::measurement::{MeasurementDb, Sample, SampleKey};
use hetero_etm::core::pipeline::{Estimator, ModelBank};
use hetero_etm::stencil::{simulate_stencil, StencilParams};

fn stencil_sample(spec: &hetero_etm::cluster::ClusterSpec, key: SampleKey, n: usize) -> Sample {
    let cfg = Configuration {
        uses: vec![KindUse {
            kind: key.kind_id(),
            pes: key.pes,
            procs_per_pe: key.m,
        }],
    };
    let run = simulate_stencil(spec, &cfg, &StencilParams::side(n));
    Sample {
        n,
        ta: run.ta_of_kind(key.kind_id()).expect("kind ran"),
        tc: run.tc_of_kind(key.kind_id()).expect("kind ran"),
        wall: run.wall_seconds,
        multi_node: run.nodes_used > 1,
    }
}

fn stencil_db(spec: &hetero_etm::cluster::ClusterSpec, ns: &[usize]) -> MeasurementDb {
    let mut db = MeasurementDb::new();
    for &n in ns {
        for m1 in 1..=2usize {
            let key = SampleKey::new(KindId(0), 1, m1);
            db.record(key, stencil_sample(spec, key, n));
        }
        for &p2 in &[1usize, 2, 4, 8] {
            for m2 in 1..=2usize {
                let key = SampleKey::new(KindId(1), p2, m2);
                db.record(key, stencil_sample(spec, key, n));
            }
        }
    }
    db
}

#[test]
fn pipeline_fits_and_predicts_a_different_application() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let db = stencil_db(&spec, &[256, 512, 768, 1024]);
    let bank = ModelBank::fit(&db, 0.85).expect("fit on stencil data");
    let est = Estimator::unadjusted(bank);

    // The fitted Ta is ~quadratic-in-N per iteration with iters ∝ N:
    // cubic overall — but the model never needed to know that; check
    // predictions against fresh simulated runs.
    for (cfg, n) in [
        (Configuration::p1m1_p2m2(0, 0, 1, 1), 640usize), // single PE, NT bin
        (Configuration::p1m1_p2m2(0, 0, 6, 1), 768),      // multi-PE, PT bin
        (Configuration::p1m1_p2m2(1, 1, 4, 1), 512),      // heterogeneous
    ] {
        let predicted = est.estimate(&cfg, n).expect("estimate");
        let run = simulate_stencil(&spec, &cfg, &StencilParams::side(n));
        let rel = ((predicted - run.wall_seconds) / run.wall_seconds).abs();
        assert!(
            rel < 0.40,
            "{}: predicted {predicted:.2} vs measured {:.2} (rel {rel:.3})",
            cfg.label(&spec),
            run.wall_seconds
        );
    }
}

#[test]
fn stencil_models_know_communication_is_latency_bound() {
    // For the stencil, adding PEs eventually stops helping: the fitted
    // models must reproduce the measured optimum's neighbourhood.
    let spec = paper_cluster(CommLibProfile::mpich122());
    let db = stencil_db(&spec, &[256, 512, 768, 1024]);
    let est = Estimator::unadjusted(ModelBank::fit(&db, 0.85).expect("fit"));
    let n = 512;
    let best_est = (1..=8usize)
        .min_by(|&a, &b| {
            let ta = est
                .estimate(&Configuration::p1m1_p2m2(0, 0, a, 1), n)
                .unwrap();
            let tb = est
                .estimate(&Configuration::p1m1_p2m2(0, 0, b, 1), n)
                .unwrap();
            ta.total_cmp(&tb)
        })
        .unwrap();
    let best_meas = (1..=8usize)
        .min_by(|&a, &b| {
            let ta = simulate_stencil(
                &spec,
                &Configuration::p1m1_p2m2(0, 0, a, 1),
                &StencilParams::side(n),
            )
            .wall_seconds;
            let tb = simulate_stencil(
                &spec,
                &Configuration::p1m1_p2m2(0, 0, b, 1),
                &StencilParams::side(n),
            )
            .wall_seconds;
            ta.total_cmp(&tb)
        })
        .unwrap();
    assert!(
        (best_est as i64 - best_meas as i64).abs() <= 2,
        "estimated optimum P={best_est} vs measured P={best_meas}"
    );
}
