//! Cross-crate integration tests: the full measure → fit → estimate →
//! select pipeline on the simulated paper cluster.
//!
//! These use trimmed campaigns (fewer sizes / PE counts than the paper's
//! plans) so the suite stays fast in debug builds; the full-scale
//! reproduction lives in `etm-repro` and is exercised by the `#[ignore]`d
//! test at the bottom (run with `cargo test -- --ignored` or via
//! `repro all`).

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration, KindId};
use hetero_etm::core::measurement::SampleKey;
use hetero_etm::core::pipeline::{build_estimator, run_construction, Estimator, ModelBank};
use hetero_etm::core::plan::{ConstructionPoint, EvalPoint, MeasurementPlan, PlanKind};
use hetero_etm::hpl::{simulate_hpl, HplParams};

const NB: usize = 64;

/// A fast campaign: Athlon m ∈ 1..3, P-II pes ∈ {1, 2, 4, 8}, m ∈ 1..3
/// (multiplicities must match across kinds so composition has donors).
fn mini_plan(ns: &[usize]) -> MeasurementPlan {
    let mut construction = Vec::new();
    for &n in ns {
        for m1 in 1..=3 {
            construction.push(ConstructionPoint {
                key: SampleKey::new(KindId(0), 1, m1),
                n,
            });
        }
        for &p2 in &[1usize, 2, 4, 8] {
            for m2 in 1..=3 {
                construction.push(ConstructionPoint {
                    key: SampleKey::new(KindId(1), p2, m2),
                    n,
                });
            }
        }
    }
    MeasurementPlan {
        kind: PlanKind::NL,
        construction,
        construction_ns: ns.to_vec(),
        evaluation: Vec::<EvalPoint>::new(),
        evaluation_ns: vec![],
    }
}

#[test]
fn estimator_accurate_in_interpolation_range() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = mini_plan(&[400, 800, 1600, 2400, 3200]);
    let (est, db) = build_estimator(&spec, &plan, NB).expect("pipeline fits");
    assert!(db.len() >= plan.construction.len());

    // Homogeneous single-PE configs: the N-T models should nail their own
    // training points and interpolate well.
    for (cfg, n) in [
        (Configuration::p1m1_p2m2(1, 1, 0, 0), 1600usize),
        (Configuration::p1m1_p2m2(1, 2, 0, 0), 2000),
        (Configuration::p1m1_p2m2(0, 0, 1, 2), 1200),
    ] {
        let predicted = est.estimate(&cfg, n).expect("estimate");
        let measured = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(NB)).wall_seconds;
        let rel = ((predicted - measured) / measured).abs();
        assert!(
            rel < 0.10,
            "{}: predicted {predicted:.2} vs measured {measured:.2} (rel {rel:.3})",
            cfg.label(&spec)
        );
    }

    // Heterogeneous multi-PE configs through the P-T models: coarser but
    // bounded.
    for (cfg, n) in [
        (Configuration::p1m1_p2m2(1, 1, 4, 1), 2400usize),
        (Configuration::p1m1_p2m2(1, 2, 8, 1), 3200),
        (Configuration::p1m1_p2m2(0, 0, 6, 1), 2400),
    ] {
        let predicted = est.estimate(&cfg, n).expect("estimate");
        let measured = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(NB)).wall_seconds;
        let rel = ((predicted - measured) / measured).abs();
        assert!(
            rel < 0.35,
            "{}: predicted {predicted:.2} vs measured {measured:.2} (rel {rel:.3})",
            cfg.label(&spec)
        );
    }
}

#[test]
fn athlon_models_are_composed_not_measured() {
    // One Athlon -> no P variation -> its P-T models must come from
    // composition (§3.5), and the bank must say so.
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = mini_plan(&[400, 800, 1200, 1600]);
    let (est, _) = build_estimator(&spec, &plan, NB).expect("pipeline fits");
    assert!(
        est.bank.composed_kinds.contains(&0),
        "Athlon (kind 0) must be composed: {:?}",
        est.bank.composed_kinds
    );
    assert!(
        !est.bank.composed_kinds.contains(&1),
        "Pentium-II has 8 PEs and must be measured"
    );
    // Composed models exist for every Athlon multiplicity in the plan.
    for m in 1..=3 {
        assert!(
            est.bank.pt.contains_key(&(0, m)),
            "missing composed (0,{m})"
        );
    }
}

#[test]
fn binning_single_pe_uses_nt_model() {
    // For a single-PE configuration the estimate must come from the N-T
    // model: a run measured during construction should be reproduced
    // almost exactly (the N-T fit interpolates its own training data).
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = mini_plan(&[400, 800, 1200, 1600]);
    let (est, db) = build_estimator(&spec, &plan, NB).expect("pipeline fits");
    let key = SampleKey::new(KindId(1), 1, 1);
    let sample = db
        .samples(&key)
        .iter()
        .find(|s| s.n == 1200)
        .expect("measured at N=1200");
    let cfg = Configuration::p1m1_p2m2(0, 0, 1, 1);
    let predicted = est.estimate(&cfg, 1200).expect("estimate");
    let rel = ((predicted - sample.wall) / sample.wall).abs();
    // Ta+Tc vs wall differ by scheduling slack only.
    assert!(
        rel < 0.05,
        "NT model should reproduce training point: {rel}"
    );
}

#[test]
fn small_n_models_underestimate_large_n() {
    // The NS failure mode (Table 9): models fit on N <= 1600 grossly
    // underestimate the single-Athlon time at N = 9600 — efficiency keeps
    // rising with N (so the small-N fit's k0 is too small) and the memory
    // cliff at 8N^2 > usable RAM is invisible from the training range.
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = mini_plan(&[400, 800, 1200, 1600]);
    let (est, _) = build_estimator(&spec, &plan, NB).expect("pipeline fits");
    let cfg = Configuration::p1m1_p2m2(1, 1, 0, 0);
    let n = 9600;
    let predicted = est.estimate(&cfg, n).expect("estimate");
    let measured = simulate_hpl(&spec, &cfg, &HplParams::order(n).with_nb(NB)).wall_seconds;
    assert!(
        predicted < 0.85 * measured,
        "NS-style extrapolation must underestimate: predicted {predicted:.1} vs measured {measured:.1}"
    );
    // The same model interpolates its own training range fine.
    let small = est.estimate(&cfg, 1200).expect("estimate");
    let small_meas = simulate_hpl(&spec, &cfg, &HplParams::order(1200).with_nb(NB)).wall_seconds;
    assert!(((small - small_meas) / small_meas).abs() < 0.10);
}

#[test]
fn model_bank_fit_is_deterministic() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = mini_plan(&[400, 800, 1200, 1600]);
    let db = run_construction(&spec, &plan, NB);
    let a = ModelBank::fit(&db, 0.85).expect("fit");
    let b = ModelBank::fit(&db, 0.85).expect("fit");
    let cfg = Configuration::p1m1_p2m2(1, 2, 8, 1);
    let ea = Estimator::unadjusted(a).estimate(&cfg, 3200).unwrap();
    let eb = Estimator::unadjusted(b).estimate(&cfg, 3200).unwrap();
    assert_eq!(ea.to_bits(), eb.to_bits());
}

#[test]
fn estimate_errors_are_typed() {
    use hetero_etm::core::pipeline::PipelineError;
    let spec = paper_cluster(CommLibProfile::mpich122());
    let plan = mini_plan(&[400, 800, 1200, 1600]);
    let (est, _) = build_estimator(&spec, &plan, NB).expect("pipeline fits");
    // M1 = 6 was never measured in the mini plan.
    let missing = Configuration::p1m1_p2m2(1, 6, 8, 1);
    match est.estimate(&missing, 3200) {
        Err(PipelineError::MissingPt { kind: 0, m: 6 }) => {}
        other => panic!("expected MissingPt, got {other:?}"),
    }
    let empty = Configuration::p1m1_p2m2(0, 0, 0, 0);
    assert!(matches!(
        est.estimate(&empty, 3200),
        Err(PipelineError::EmptyConfiguration)
    ));
}

/// Full-scale NL campaign (the paper's Table 7). Slow: run explicitly
/// with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full-scale campaign: ~2 minutes in release"]
fn full_nl_campaign_selects_near_optimal_configs() {
    use hetero_etm::core::plan::evaluation_configs;
    use hetero_etm::search::exhaustive;
    let spec = paper_cluster(CommLibProfile::mpich122());
    let (est, _) = build_estimator(&spec, &MeasurementPlan::nl(), NB).expect("pipeline");
    let candidates = evaluation_configs();
    for n in [3200usize, 6400, 9600] {
        let best = exhaustive(&candidates, |c| est.estimate(c, n)).expect("estimates");
        let tau_hat =
            simulate_hpl(&spec, &best.config, &HplParams::order(n).with_nb(NB)).wall_seconds;
        let t_hat = candidates
            .iter()
            .map(|c| simulate_hpl(&spec, c, &HplParams::order(n).with_nb(NB)).wall_seconds)
            .fold(f64::INFINITY, f64::min);
        let penalty = (tau_hat - t_hat) / t_hat;
        assert!(
            penalty < 0.20,
            "N={n}: selection penalty {penalty:.3} too large"
        );
    }
}
