//! Cross-crate integration tests of the substrates: numeric HPL over
//! real message passing, the timed HPL over the discrete-event fabric,
//! and the agreement between the two control flows.

use hetero_etm::cluster::spec::paper_cluster;
use hetero_etm::cluster::{CommLibProfile, Configuration, KindId};
use hetero_etm::hpl::numeric::run_numeric;
use hetero_etm::hpl::{simulate_hpl, BcastAlgo, HplParams};
use hetero_etm::linalg::gen::{hpl_matrix, hpl_rhs};
use hetero_etm::linalg::verify::residual;

#[test]
fn numeric_hpl_solves_across_rank_counts() {
    for p in [1usize, 2, 5, 8] {
        let params = HplParams::order(120).with_nb(24).with_seed(p as u64 + 100);
        let r = run_numeric(&params, p);
        assert!(
            r.residual.passes(),
            "p={p}: scaled residual {}",
            r.residual.scaled
        );
        // Cross-check against an independent residual computation.
        let a = hpl_matrix(120, p as u64 + 100);
        let b = hpl_rhs(120, p as u64 + 100);
        let again = residual(&a, &r.x, &b);
        assert_eq!(again.scaled, r.residual.scaled);
    }
}

#[test]
fn numeric_hpl_bcast_algorithms_agree() {
    let ring = run_numeric(
        &HplParams::order(96).with_nb(16).with_bcast(BcastAlgo::Ring),
        4,
    );
    let binom = run_numeric(
        &HplParams::order(96)
            .with_nb(16)
            .with_bcast(BcastAlgo::Binomial),
        4,
    );
    // Same arithmetic, different communication schedule: identical x.
    for (a, b) in ring.x.iter().zip(&binom.x) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn simulated_phase_structure_matches_paper_fig4() {
    // Every phase of Fig. 4 must be populated for a multi-PE run, and
    // the decomposition identities must hold.
    let spec = paper_cluster(CommLibProfile::mpich122());
    let run = simulate_hpl(
        &spec,
        &Configuration::p1m1_p2m2(1, 2, 4, 1),
        &HplParams::order(1600),
    );
    for (i, ph) in run.phases.iter().enumerate() {
        assert!(ph.pfact >= 0.0 && ph.update > 0.0, "rank {i}: {ph:?}");
        assert!(ph.bcast > 0.0, "rank {i} must spend time in bcast");
        assert!(ph.laswp > 0.0, "rank {i} must spend time in laswp");
        assert!((ph.rfact() - (ph.pfact + ph.mxswp)).abs() < 1e-12);
        assert!((ph.total() - (ph.ta() + ph.tc())).abs() < 1e-9);
    }
    // The panel owners collectively did all the pfact work.
    let total_pfact: f64 = run.phases.iter().map(|p| p.pfact).sum();
    assert!(total_pfact > 0.0);
}

#[test]
fn wall_time_bounded_by_phase_accounting() {
    // The simulated wall time is at least the slowest rank's accounted
    // phases (phases measure elapsed windows, so slack can only add).
    let spec = paper_cluster(CommLibProfile::mpich122());
    let run = simulate_hpl(
        &spec,
        &Configuration::p1m1_p2m2(1, 1, 8, 1),
        &HplParams::order(2400),
    );
    let slowest_total = run.phases.iter().map(|p| p.total()).fold(0.0_f64, f64::max);
    assert!(
        run.wall_seconds >= 0.95 * slowest_total,
        "wall {} vs slowest accounted {}",
        run.wall_seconds,
        slowest_total
    );
    assert!(run.wall_seconds < 2.0 * slowest_total);
}

#[test]
fn comm_library_profile_changes_multiprocessing_only() {
    // Single process per CPU: the two MPICH profiles should give nearly
    // identical times (inter-node path identical); with 4 processes on
    // the Athlon the old profile must be clearly worse.
    let old = paper_cluster(CommLibProfile::mpich121());
    let new = paper_cluster(CommLibProfile::mpich122());
    let n = HplParams::order(2400);

    let single_old = simulate_hpl(&old, &Configuration::p1m1_p2m2(1, 1, 0, 0), &n).wall_seconds;
    let single_new = simulate_hpl(&new, &Configuration::p1m1_p2m2(1, 1, 0, 0), &n).wall_seconds;
    assert!(
        (single_old - single_new).abs() / single_new < 0.02,
        "single-process runs should not care about the intra-node path: {single_old} vs {single_new}"
    );

    let multi_old = simulate_hpl(&old, &Configuration::p1m1_p2m2(1, 4, 0, 0), &n).wall_seconds;
    let multi_new = simulate_hpl(&new, &Configuration::p1m1_p2m2(1, 4, 0, 0), &n).wall_seconds;
    assert!(
        multi_old > 1.15 * multi_new,
        "MPICH-1.2.1 must hurt multiprocessing: {multi_old} vs {multi_new}"
    );
}

#[test]
fn per_kind_times_track_heterogeneity() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let run = simulate_hpl(
        &spec,
        &Configuration::p1m1_p2m2(1, 1, 8, 1),
        &HplParams::order(3200),
    );
    let ta_fast = run.ta_of_kind(KindId(0)).unwrap();
    let ta_slow = run.ta_of_kind(KindId(1)).unwrap();
    // Equal work, ~5x speed difference.
    let ratio = ta_slow / ta_fast;
    assert!(
        (2.5..8.0).contains(&ratio),
        "Ta ratio should reflect the speed gap: {ratio}"
    );
    // The slow kind's wait shows up as the fast kind's bcast/Tc? No: the
    // *fast* kind finishes compute early and waits in bcast for panels
    // from slow owners.
    let tc_fast = run.tc_of_kind(KindId(0)).unwrap();
    assert!(tc_fast > 0.0);
}

#[test]
fn nodes_used_reported_correctly() {
    let spec = paper_cluster(CommLibProfile::mpich122());
    let single = simulate_hpl(
        &spec,
        &Configuration::p1m1_p2m2(1, 2, 0, 0),
        &HplParams::order(800),
    );
    assert_eq!(single.nodes_used, 1);
    let multi = simulate_hpl(
        &spec,
        &Configuration::p1m1_p2m2(1, 1, 8, 1),
        &HplParams::order(800),
    );
    assert_eq!(multi.nodes_used, 5);
    // Two P-II processes land on one dual node.
    let dual = simulate_hpl(
        &spec,
        &Configuration::p1m1_p2m2(0, 0, 2, 1),
        &HplParams::order(800),
    );
    assert_eq!(dual.nodes_used, 1);
}
